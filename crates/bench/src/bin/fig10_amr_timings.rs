//! Fig. 10 — Breakdown of AMR function timings for the full mantle
//! convection solve (the table companion to Fig. 8).
//!
//! Paper: per mesh-adaptation step (= per 16 time steps), every AMR
//! function costs at most a few seconds while the solver costs hundreds;
//! the AMR/solve ratio stays below 1% from 1 to 16,384 cores.
//!
//! Here: the measured host AMR phase profile of the real RHEA run plus
//! the machine model's communication terms, printed in the paper's
//! format, with the AMR/solve percentage as the headline column.

use rhea::timers::Phase;
use rhea_bench::{banner, convection_workload, paper_core_counts, Table};
use scomm::MachineModel;

fn main() {
    banner(
        "Figure 10",
        "AMR function timings vs. solve time (full convection)",
    );
    let steps = 6;
    let adapt_every = 3;
    let (timers, n_elem, _) = convection_workload(1, 4, steps, adapt_every);
    let machine = MachineModel::ranger();
    let adapt_count = (steps / adapt_every) as f64;
    println!(
        "measured serial run: {n_elem} elements, {steps} steps, {} adaptations\n",
        adapt_count
    );

    let host_to_model =
        |sec: f64| machine.t_fem_flops(sec * machine.fem_efficiency * machine.peak_flops_per_core);
    let surface_bytes = 8.0 * 6.0 * (n_elem as f64).powf(2.0 / 3.0) * 8.0;

    let mut table = Table::new(&[
        "#cores",
        "NewTree",
        "Coarsen+Refine",
        "BalanceT",
        "PartitionT",
        "ExtractM",
        "Interp+Transfer",
        "MarkE",
        "solve time",
        "AMR/solve %",
    ]);
    for &p in &paper_core_counts(16384) {
        let a2a = machine.t_alltoallv(surface_bytes, 26);
        let ar = machine.t_allreduce(8.0, p);
        let comm = |phase: Phase| -> f64 {
            if p == 1 {
                return 0.0;
            }
            match phase {
                Phase::BalanceTree => 6.0 * (a2a + ar),
                Phase::PartitionTree => 4.0 * a2a + ar,
                Phase::ExtractMesh => 5.0 * a2a + 4.0 * ar,
                Phase::MarkElements => 40.0 * ar,
                Phase::TransferFields => 2.0 * a2a,
                Phase::NewTree => ar,
                _ => 0.0,
            }
        };
        // Per adaptation step (the paper's unit).
        let per_adapt = |ph: Phase| host_to_model(timers.get(ph)) / adapt_count + comm(ph);
        let newtree = host_to_model(timers.get(Phase::NewTree)); // once per run
        let cr = per_adapt(Phase::CoarsenTree) + per_adapt(Phase::RefineTree);
        let bal = per_adapt(Phase::BalanceTree);
        let part = per_adapt(Phase::PartitionTree);
        let ext = per_adapt(Phase::ExtractMesh);
        let it = per_adapt(Phase::InterpolateFields) + per_adapt(Phase::TransferFields);
        let mark = per_adapt(Phase::MarkElements);
        // Solve time per adaptation step: all PDE phases + their comm.
        let iters_comm = if p == 1 {
            0.0
        } else {
            200.0 * (a2a + 2.0 * ar) // MINRES iterations across 16 steps
        };
        let solve = (host_to_model(timers.get(Phase::Minres))
            + host_to_model(timers.get(Phase::AmgSetup))
            + host_to_model(timers.get(Phase::AmgSolve))
            + host_to_model(timers.get(Phase::TimeIntegration)))
            / adapt_count
            + iters_comm;
        let amr = cr + bal + part + ext + it + mark;
        table.row(&[
            p.to_string(),
            format!("{newtree:.2}"),
            format!("{cr:.2}"),
            format!("{bal:.2}"),
            format!("{part:.2}"),
            format!("{ext:.2}"),
            format!("{it:.2}"),
            format!("{mark:.2}"),
            format!("{solve:.2}"),
            format!("{:.2}", 100.0 * amr / solve),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper shape anchors (seconds per adaptation step at 16,384 cores):\n\
         NewTree 1.61 once; BalanceTree 1.23; PartitionTree 1.22; ExtractMesh 2.85;\n\
         Interp+Transfer 0.20; MarkElements 0.32; solve 1134.30 — AMR/solve ≈ 0.5–0.6%."
    );
}
