//! Fig. 10 — Breakdown of AMR function timings for the full mantle
//! convection solve (the table companion to Fig. 8).
//!
//! Paper: per mesh-adaptation step (= per 16 time steps), every AMR
//! function costs at most a few seconds while the solver costs hundreds;
//! the AMR/solve ratio stays below 1% from 1 to 16,384 cores.
//!
//! Here, two parts:
//!
//! 1. **Measured adapt-cycle A/B at P = 4** (PR 4): the fast adaptation
//!    path (recursive seed-propagation balance + allocation-free
//!    partition/transfer) against the retained PR 3 baseline
//!    (`balance_ripple` + allocating partition/transfer wrappers), with
//!    bitwise-identical post-balance leaf sets asserted every cycle and
//!    a warm-cycle zero-allocation check on the fast path. Medians land
//!    in `BENCH_pr4.json`; the full (release) run gates on ≥2× speedup.
//! 2. The modeled paper table: the measured host AMR phase profile of
//!    the real RHEA run plus the machine model's communication terms,
//!    printed in the paper's format (full mode only).
//!
//! Usage: `fig10_amr_timings [--smoke] [--out PATH]`.

use obs::json::Value;
use octree::balance::BalanceKind;
use octree::parallel::{transfer_fields, transfer_fields_into, DistOctree, PartitionPlan};
use octree::Octant;
use rhea::timers::Phase;
use rhea_bench::{banner, convection_workload, paper_core_counts, Table};
use scomm::{spmd, MachineModel};
use std::time::Instant;

/// The deterministic geometric cycle predicates: the cycle map reaches a
/// periodic orbit, so warm-path buffer capacities stop growing and the
/// two trees stay comparable cycle for cycle.
fn should_refine(o: &Octant, max_level: u8) -> bool {
    let ctr = o.center_unit();
    let d2 = (ctr[0] - 0.3).powi(2) + (ctr[1] - 0.4).powi(2) + (ctr[2] - 0.5).powi(2);
    o.level < max_level && d2 < 0.09
}

fn should_coarsen(o: &Octant, min_level: u8) -> bool {
    o.level > min_level && o.center_unit()[0] > 0.5
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Measured adapt-cycle A/B at P = 4. Returns the JSON record; panics if
/// the two paths ever disagree on the leaf set or if a warm fast cycle
/// allocates.
fn bench_adapt_cycle(smoke: bool) -> Value {
    let (level, samples, warmups) = if smoke {
        (2u8, 3usize, 8usize)
    } else {
        (3, 15, 8)
    };
    let max_level = level + 2;
    let min_level = level;
    let out = spmd::run(4, move |c| {
        let mut fast = DistOctree::new_uniform(c, level);
        let mut base = DistOctree::new_uniform(c, level);
        let mut plan = PartitionPlan::default();
        let mut data: Vec<f64> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut recv_counts: Vec<usize> = Vec::new();
        let mut moved: Vec<f64> = Vec::new();

        let mut fast_ns = Vec::new();
        let mut base_ns = Vec::new();
        let mut alloc_delta = 0u64;
        let mut rounds = 0u64;
        for cycle in 0..warmups + samples {
            // Fast path: fast balance + reusable plan/buffers.
            c.barrier();
            let cap0 = fast.alloc_bytes()
                + ((data.capacity() + moved.capacity()) * 8) as u64
                + ((counts.capacity() + recv_counts.capacity()) * 8) as u64;
            let t0 = Instant::now();
            fast.refine(|o| should_refine(o, max_level));
            fast.coarsen(|o| should_coarsen(o, min_level));
            fast.balance(BalanceKind::Full);
            data.clear();
            data.resize(8 * fast.local.len(), 1.0);
            fast.partition_with(&mut plan);
            transfer_fields_into(
                c,
                &plan,
                &data,
                8,
                &mut counts,
                &mut recv_counts,
                &mut moved,
            );
            c.barrier();
            let dt_fast = t0.elapsed().as_nanos() as f64;
            rounds = fast.last_balance_rounds();
            if cycle >= warmups {
                fast_ns.push(dt_fast);
                let cap1 = fast.alloc_bytes()
                    + ((data.capacity() + moved.capacity()) * 8) as u64
                    + ((counts.capacity() + recv_counts.capacity()) * 8) as u64;
                alloc_delta += cap1 - cap0;
            }

            // Baseline: ripple balance + allocating wrappers (PR 3 idiom).
            c.barrier();
            let t0 = Instant::now();
            base.refine(|o| should_refine(o, max_level));
            base.coarsen(|o| should_coarsen(o, min_level));
            base.balance_ripple(BalanceKind::Full);
            let bdata = vec![1.0f64; 8 * base.local.len()];
            let bplan = base.partition();
            let _bmoved = transfer_fields(c, &bplan, &bdata, 8);
            c.barrier();
            let dt_base = t0.elapsed().as_nanos() as f64;
            if cycle >= warmups {
                base_ns.push(dt_base);
            }

            // The two paths must agree bitwise: same leaves, same ranks.
            assert_eq!(
                fast.local, base.local,
                "fast and ripple adapt paths diverged at cycle {cycle}"
            );
        }
        assert_eq!(alloc_delta, 0, "warm fast adapt cycle allocated");
        (
            median(fast_ns),
            median(base_ns),
            fast.global_count(),
            rounds,
        )
    });
    let (fast_med, base_med, elements, rounds) = out[0];
    let speedup = base_med / fast_med;
    println!(
        "adapt cycle A/B (P=4, {elements} elements, {rounds} balance rounds): \
         fast {:.2} ms, baseline {:.2} ms, speedup {speedup:.2}x",
        fast_med / 1e6,
        base_med / 1e6
    );
    Value::object([
        ("ranks", Value::from(4u64)),
        ("elements", Value::from(elements)),
        ("fast_ns_per_cycle", Value::from(fast_med)),
        ("baseline_ns_per_cycle", Value::from(base_med)),
        ("speedup", Value::from(speedup)),
        ("balance_rounds", Value::from(rounds)),
        ("warm_alloc_bytes", Value::from(0u64)),
    ])
}

fn modeled_paper_table() {
    let steps = 6;
    let adapt_every = 3;
    let (timers, n_elem, _) = convection_workload(1, 4, steps, adapt_every);
    let machine = MachineModel::ranger();
    let adapt_count = (steps / adapt_every) as f64;
    println!(
        "measured serial run: {n_elem} elements, {steps} steps, {} adaptations\n",
        adapt_count
    );

    let host_to_model =
        |sec: f64| machine.t_fem_flops(sec * machine.fem_efficiency * machine.peak_flops_per_core);
    let surface_bytes = 8.0 * 6.0 * (n_elem as f64).powf(2.0 / 3.0) * 8.0;

    let mut table = Table::new(&[
        "#cores",
        "NewTree",
        "Coarsen+Refine",
        "BalanceT",
        "PartitionT",
        "ExtractM",
        "Interp+Transfer",
        "MarkE",
        "solve time",
        "AMR/solve %",
    ]);
    for &p in &paper_core_counts(16384) {
        let a2a = machine.t_alltoallv(surface_bytes, 26);
        let ar = machine.t_allreduce(8.0, p);
        let comm = |phase: Phase| -> f64 {
            if p == 1 {
                return 0.0;
            }
            match phase {
                Phase::BalanceTree => 6.0 * (a2a + ar),
                Phase::PartitionTree => 4.0 * a2a + ar,
                Phase::ExtractMesh => 5.0 * a2a + 4.0 * ar,
                Phase::MarkElements => 40.0 * ar,
                Phase::TransferFields => 2.0 * a2a,
                Phase::NewTree => ar,
                _ => 0.0,
            }
        };
        // Per adaptation step (the paper's unit).
        let per_adapt = |ph: Phase| host_to_model(timers.get(ph)) / adapt_count + comm(ph);
        let newtree = host_to_model(timers.get(Phase::NewTree)); // once per run
        let cr = per_adapt(Phase::CoarsenTree) + per_adapt(Phase::RefineTree);
        let bal = per_adapt(Phase::BalanceTree);
        let part = per_adapt(Phase::PartitionTree);
        let ext = per_adapt(Phase::ExtractMesh);
        let it = per_adapt(Phase::InterpolateFields) + per_adapt(Phase::TransferFields);
        let mark = per_adapt(Phase::MarkElements);
        // Solve time per adaptation step: all PDE phases + their comm.
        let iters_comm = if p == 1 {
            0.0
        } else {
            200.0 * (a2a + 2.0 * ar) // MINRES iterations across 16 steps
        };
        let solve = (host_to_model(timers.get(Phase::Minres))
            + host_to_model(timers.get(Phase::AmgSetup))
            + host_to_model(timers.get(Phase::AmgSolve))
            + host_to_model(timers.get(Phase::TimeIntegration)))
            / adapt_count
            + iters_comm;
        let amr = cr + bal + part + ext + it + mark;
        table.row(&[
            p.to_string(),
            format!("{newtree:.2}"),
            format!("{cr:.2}"),
            format!("{bal:.2}"),
            format!("{part:.2}"),
            format!("{ext:.2}"),
            format!("{it:.2}"),
            format!("{mark:.2}"),
            format!("{solve:.2}"),
            format!("{:.2}", 100.0 * amr / solve),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper shape anchors (seconds per adaptation step at 16,384 cores):\n\
         NewTree 1.61 once; BalanceTree 1.23; PartitionTree 1.22; ExtractMesh 2.85;\n\
         Interp+Transfer 0.20; MarkElements 0.32; solve 1134.30 — AMR/solve ≈ 0.5–0.6%."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr4.json".to_string());

    banner(
        "Figure 10",
        "AMR function timings vs. solve time (full convection)",
    );
    let adapt = bench_adapt_cycle(smoke);
    let speedup = adapt.get("speedup").and_then(|v| v.as_f64()).unwrap();
    let doc = Value::object([
        ("schema", Value::from("bench.pr4.v1")),
        ("mode", Value::from(if smoke { "smoke" } else { "full" })),
        ("adapt_cycle", adapt),
    ]);
    std::fs::write(&out_path, doc.to_json() + "\n").expect("write BENCH_pr4.json");
    println!("wrote {out_path} (adapt-cycle speedup {speedup:.2}x)\n");
    if !smoke {
        assert!(
            speedup >= 2.0,
            "adapt-cycle speedup regressed below 2x: {speedup:.2}"
        );
        modeled_paper_table();
    }
}
