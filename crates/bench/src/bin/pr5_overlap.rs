//! Split-phase exchange overlap benchmarks (PR 5).
//!
//! Measures the overlapped operator application — post ghost exchange,
//! sweep interior elements, complete, sweep surface elements — against
//! the blocking oracle and writes the results to `BENCH_pr5.json`:
//!
//! * `DistOp::apply` at P = 4 on a surface-light uniform mesh (scalar
//!   constant-coefficient stiffness operator, ncomp = 1): median wall
//!   time per apply, overlapped vs blocking, plus the interior/surface
//!   element split and the warm-path allocation proof. The blocking path
//!   pays four barrier rendezvous per apply (two `alltoallv_flat`
//!   rounds, forward + reverse); the split-phase path is pure
//!   point-to-point and hides the transfer behind the interior sweep.
//! * A full Stokes MINRES solve at P = 4 under both exchange paths
//!   (informational — the solve is dominated by AMG V-cycles).
//! * The measured `comm.overlap_ns` counter: how much post-to-complete
//!   window the overlapped path actually opened.
//!
//! Usage: `pr5_overlap [--smoke] [--out PATH]`. `--smoke` shrinks sample
//! counts so CI exercises the full code path in seconds; the committed
//! JSON comes from a full `--release` run (`scripts/bench.sh`). The
//! ≥ 1.25× gate on the apply speedup only asserts in full mode.

use fem::element::stiffness_matrix;
use fem::op::{DistOp, DofMap};
use mesh::extract::extract_mesh;
use obs::json::Value;
use octree::parallel::DistOctree;
use scomm::spmd;
use std::time::Instant;
use stokes::{StokesOptions, StokesSolver};

/// Sum of the `comm.overlap_ns` counter across ranks for a short traced
/// run of overlapped applies: how long completed requests sat in flight
/// while the ranks were sweeping interior elements. The timing A/B runs
/// untraced (the production configuration); this run only feeds the
/// telemetry gate.
fn measure_overlap_window() -> u64 {
    let (_, profiles) = spmd::run_traced(4, move |c, _rec| {
        let t = DistOctree::new_uniform(c, 3);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = DofMap::new(&m, c, 1);
        let amat = stiffness_matrix(m.element_size(0), 1.0);
        let mut flat = [0.0f64; 64];
        for (i, row) in amat.iter().enumerate() {
            flat[i * 8..(i + 1) * 8].copy_from_slice(row);
        }
        let op = DistOp::new(
            &map,
            Box::new(move |_e, out: &mut [f64]| out.copy_from_slice(&flat)),
            None,
        );
        let x = vec![1.0; map.n_owned()];
        let mut y = vec![0.0; map.n_owned()];
        for _ in 0..4 {
            op.apply_owned(&x, &mut y);
        }
    });
    profiles
        .iter()
        .map(|p| {
            p.summary
                .counters
                .get(scomm::OVERLAP_COUNTER)
                .copied()
                .unwrap_or(0)
        })
        .sum()
}

/// `DistOp::apply` A/B at P = 4 on a surface-light mesh. Returns the
/// JSON row plus (speedup, overlap_ns, warm alloc bytes) for the gates.
fn bench_apply(samples: usize) -> (Value, f64, u64, u64) {
    let out = spmd::run(4, move |c| {
        let t = DistOctree::new_uniform(c, 3);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = DofMap::new(&m, c, 1);
        // Constant-coefficient operator on a uniform mesh: one element
        // matrix serves every element, so the sweep is gather / matvec /
        // scatter and the exchange cost is a visible fraction of the
        // apply — the regime where overlap pays.
        let amat = stiffness_matrix(m.element_size(0), 1.0);
        let mut flat = [0.0f64; 64];
        for (i, row) in amat.iter().enumerate() {
            flat[i * 8..(i + 1) * 8].copy_from_slice(row);
        }
        let op = DistOp::new(
            &map,
            Box::new(move |_e, out: &mut [f64]| out.copy_from_slice(&flat)),
            None,
        );
        let x: Vec<f64> = (0..map.n_owned())
            .map(|i| ((i * 31 + 11) % 997) as f64 / 997.0)
            .collect();
        let mut y = vec![0.0; map.n_owned()];
        let mut y2 = vec![0.0; map.n_owned()];

        // Interleaved A/B in barrier-fenced blocks of `BLOCK` applies:
        // each sample times the overlapped and the blocking path
        // back-to-back, so scheduler drift (the simulated ranks
        // oversubscribe the host cores) hits both paths alike; the
        // per-path medians over all samples form the reported ratio.
        const BLOCK: usize = 16;
        assert!(op.overlap(), "split-phase must be the default");
        op.apply_owned(&x, &mut y);
        let warm = op.alloc_bytes();
        let mut t_over_s = Vec::with_capacity(samples);
        let mut t_block_s = Vec::with_capacity(samples);
        for _ in 0..samples {
            op.set_overlap(true);
            c.barrier();
            let t0 = Instant::now();
            for _ in 0..BLOCK {
                op.apply_owned(&x, &mut y);
            }
            t_over_s.push(t0.elapsed().as_nanos() as f64 / BLOCK as f64);
            op.set_overlap(false);
            c.barrier();
            let t0 = Instant::now();
            for _ in 0..BLOCK {
                op.apply_owned(&x, &mut y2);
            }
            t_block_s.push(t0.elapsed().as_nanos() as f64 / BLOCK as f64);
        }
        let warm_alloc = op.alloc_bytes() - warm;
        let median = |v: &mut Vec<f64>| -> f64 {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let t_over = median(&mut t_over_s);
        let t_block = median(&mut t_block_s);
        assert_eq!(
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "paths must stay bitwise identical"
        );
        (
            t_over,
            t_block,
            warm_alloc,
            m.interior_elems.len() as u64,
            m.surface_elems.len() as u64,
        )
    });
    let t_over = out.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let t_block = out.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let warm_alloc = out.iter().map(|r| r.2).max().unwrap_or(0);
    let interior: u64 = out.iter().map(|r| r.3).sum();
    let surface: u64 = out.iter().map(|r| r.4).sum();
    let overlap_ns = measure_overlap_window();
    let speedup = t_block / t_over;
    println!(
        "DistOp::apply P=4 ncomp=1 ({interior} interior / {surface} surface elements): \
         overlapped {t_over:.0} ns, blocking {t_block:.0} ns, speedup {speedup:.2}x, \
         overlap window {overlap_ns} ns, warm alloc {warm_alloc} B"
    );
    let row = Value::object([
        ("ranks", Value::from(4u64)),
        ("ncomp", Value::from(1u64)),
        ("interior_elements", Value::from(interior)),
        ("surface_elements", Value::from(surface)),
        ("overlapped_ns_per_apply", Value::from(t_over)),
        ("blocking_ns_per_apply", Value::from(t_block)),
        ("speedup", Value::from(speedup)),
        ("overlap_window_ns", Value::from(overlap_ns)),
        ("warm_apply_alloc_bytes", Value::from(warm_alloc)),
    ]);
    (row, speedup, overlap_ns, warm_alloc)
}

/// Full MINRES solve A/B at P = 4 (informational: AMG dominates).
/// `solves` back-to-back solves per run: the `minres.alloc_bytes`
/// counter delta between a 1-solve and a 2-solve run is the
/// steady-state allocation of a warm solve (the zero-allocation proof,
/// pr3_pipeline-style).
fn bench_solve() -> Value {
    let run = |overlap: bool, solves: usize| -> (f64, usize, u64) {
        let (out, profiles) = spmd::run_traced(4, move |c, _rec| {
            let t = DistOctree::new_uniform(c, 2);
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc = vec![1.0; m.elements.len()];
            let opts = StokesOptions {
                overlap_exchange: overlap,
                ..StokesOptions::default()
            };
            let mut solver = StokesSolver::new(&m, c, visc, bc, opts);
            let (rhs, x0) = solver.build_rhs(
                |p| [(3.0 * p[1]).sin(), (2.0 * p[2]).cos(), p[0] * p[1]],
                |_| [0.0; 3],
            );
            let mut last = (0.0, 0);
            for _ in 0..solves {
                let mut x = x0.clone();
                let t0 = Instant::now();
                let info = solver.solve(&rhs, &mut x);
                assert!(info.converged, "{info:?}");
                last = (t0.elapsed().as_nanos() as f64, info.iterations);
            }
            last
        });
        let ns = out.iter().map(|r| r.0).fold(0.0f64, f64::max);
        let iters = out[0].1;
        let alloc: u64 = profiles
            .iter()
            .map(|p| {
                p.summary
                    .counters
                    .get("minres.alloc_bytes")
                    .copied()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        (ns, iters, alloc)
    };
    let (_, _, alloc_cold) = run(true, 1);
    let (ns_over, it_over, alloc_two) = run(true, 2);
    let (ns_block, it_block, _) = run(false, 2);
    let alloc_over = alloc_two - alloc_cold;
    assert_eq!(it_over, it_block, "solve paths must iterate identically");
    println!(
        "MINRES solve P=4: overlapped {:.2} ms, blocking {:.2} ms ({it_over} iters), \
         warm-solve alloc {alloc_over} B with overlap on",
        ns_over / 1e6,
        ns_block / 1e6
    );
    Value::object([
        ("ranks", Value::from(4u64)),
        ("overlapped_ns_per_solve", Value::from(ns_over)),
        ("blocking_ns_per_solve", Value::from(ns_block)),
        ("speedup", Value::from(ns_block / ns_over)),
        ("iterations", Value::from(it_over)),
        ("warm_solve_alloc_bytes", Value::from(alloc_over)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr5.json".to_string());
    let samples = if smoke { 3 } else { 41 };

    rhea_bench::banner(
        "PR 5",
        "Split-phase exchange: overlapped vs blocking operator application",
    );
    let (apply, speedup, overlap_ns, warm_alloc) = bench_apply(samples);
    let solve = bench_solve();

    let doc = Value::object([
        ("schema", Value::from("bench.pr5.v1")),
        ("mode", Value::from(if smoke { "smoke" } else { "full" })),
        ("dist_op_apply", apply),
        ("minres_solve", solve),
    ]);
    std::fs::write(&out_path, doc.to_json() + "\n").expect("write BENCH_pr5.json");
    println!("\nwrote {out_path} (apply speedup {speedup:.2}x)");
    if !smoke {
        assert!(
            speedup >= 1.25,
            "overlapped apply speedup regressed below 1.25x: {speedup:.2}"
        );
        assert!(overlap_ns > 0, "overlap window must be measurable");
        assert_eq!(warm_alloc, 0, "warm overlapped applies must not allocate");
    }
}
