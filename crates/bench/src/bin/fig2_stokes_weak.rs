//! Fig. 2 — Weak scalability of the variable-viscosity Stokes solver.
//!
//! Paper: `#cores 1→8192, #elem 67.2K→539M (~65K/core), MINRES
//! iterations 57→68` — iteration counts essentially insensitive to an
//! 8192-fold increase in cores and problem size beyond 2 billion dofs.
//!
//! Here: the identical solver (MINRES + block factorization + one AMG
//! V-cycle per velocity component + inverse-viscosity Schur diagonal) is
//! run with a 10⁴ viscosity contrast in two measured series: (A) growing
//! problem size with globally-coupled AMG — the algorithmic-scalability
//! claim itself — and (B) growing rank count at fixed size, which
//! isolates the mild iteration drift introduced by the block-Jacobi AMG
//! substitution (DESIGN.md #2). Iteration counts are an algorithmic, not
//! hardware, property, so the measured series are the result.

use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use rhea_bench::{banner, human, Table};
use scomm::spmd;
use stokes::{StokesOptions, StokesSolver};

fn main() {
    banner(
        "Figure 2",
        "Weak scalability of variable-viscosity Stokes solver (MINRES iterations)",
    );
    let mut table = Table::new(&[
        "#cores",
        "#elem",
        "#elem/core",
        "#dof",
        "MINRES #iterations",
        "series",
    ]);

    // Two series, separating the paper's *algorithmic* claim from the
    // block-Jacobi substitution artifact:
    //  A) growing problem size with a globally-coupled (serial) AMG — the
    //     analogue of BoomerAMG's algorithmic scalability in Fig. 2;
    //  B) fixed problem, growing ranks — shows the mild iteration growth
    //     introduced by the rank-local block-Jacobi AMG composition
    //     (DESIGN.md substitution #2).
    // Viscosity contrast 10⁴ across a diagonal interface throughout.
    let mut cases: Vec<(usize, u8, bool, &str)> = vec![
        (1, 2, false, "A: size"),
        (1, 3, false, "A: size"),
        (1, 4, false, "A: size"),
        (2, 3, false, "B: ranks"),
        (4, 3, false, "B: ranks"),
        (8, 3, false, "B: ranks"),
    ];
    if std::env::var("RHEA_BENCH_LARGE").is_ok() {
        // ~3 minutes: the 32K-element rung showing the plateau directly
        // (a prior calibration run measured 142 iterations here, vs 131
        // at 4K elements — 8% growth over an 8× size jump).
        cases.push((1, 5, false, "A: size"));
    }
    let cases = &cases;
    for &(ranks, level, refine_half, series) in cases.iter() {
        let out = spmd::run(ranks, move |c| {
            let mut t = DistOctree::new_uniform(c, level);
            if refine_half {
                t.refine(|o| o.center_unit()[0] < 0.5);
                t.balance(BalanceKind::Full);
                t.partition();
            }
            let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
            let n = m.n_owned;
            let bc: Vec<bool> = (0..3 * n).map(|i| m.dof_on_boundary(i / 3)).collect();
            let visc: Vec<f64> = m
                .elements
                .iter()
                .map(|o| {
                    let ctr = o.center_unit();
                    if ctr[0] + ctr[2] > 1.0 {
                        1e4
                    } else {
                        1.0
                    }
                })
                .collect();
            let mut solver = StokesSolver::new(
                &m,
                c,
                visc,
                bc,
                StokesOptions {
                    tol: 1e-8,
                    max_iter: 600,
                    ..Default::default()
                },
            );
            let (rhs, mut x) = solver.build_rhs(
                |p| [0.0, 0.0, (std::f64::consts::PI * p[0]).sin()],
                |_| [0.0; 3],
            );
            let info = solver.solve(&rhs, &mut x);
            (
                t.global_count(),
                4 * m.n_global, // 3 velocity + 1 pressure dof per node
                info.iterations,
                info.converged,
            )
        });
        let (elems, dofs, iters, conv) = out[0];
        assert!(conv, "Stokes must converge in the Fig. 2 regime");
        table.row(&[
            ranks.to_string(),
            human(elems),
            human(elems / ranks as u64),
            human(dofs),
            iters.to_string(),
            series.into(),
        ]);
    }
    // The paper's own rows for side-by-side shape comparison.
    for (cores, elem, elem_core, dof, its) in [
        (1u64, 67_200u64, 67_200u64, 271_000u64, 57u64),
        (8, 514_000, 64_200, 2_060_000, 47),
        (64, 4_200_000, 65_700, 16_800_000, 51),
        (512, 33_200_000, 64_900, 133_000_000, 60),
        (4096, 267_000_000, 65_300, 1_070_000_000, 67),
        (8192, 539_000_000, 65_900, 2_170_000_000, 68),
    ] {
        table.row(&[
            cores.to_string(),
            human(elem),
            human(elem_core),
            human(dof),
            its.to_string(),
            "paper".into(),
        ]);
    }
    table.print();
    println!();
    println!(
        "Shape check (series A): iteration growth decelerates toward a plateau as\n\
         the problem grows 64×, mirroring the paper's 47–68 band over 8192× —\n\
         the coarse levels here sit below the paper's smallest (67K-element) run,\n\
         so the first rows are pre-asymptotic. Series B shows the documented\n\
         block-Jacobi AMG substitution cost: iterations drift up mildly with rank\n\
         count at fixed size, where BoomerAMG's fully-coupled hierarchy stays flat."
    );
}
