//! Section VII / Fig. 12 — high-order DG advection on the cubed sphere
//! with forest-of-octrees adaptivity.
//!
//! Paper: a spherical front advected on the 24-octree cubed-sphere shell
//! using p = 1 elements on 1024 cores (Fig. 12); weak-scaling parallel
//! efficiency of 90% at 16,384 cores for p = 4 and 83% at 32,768 cores
//! for p = 6, adapting every 32 steps.
//!
//! Here: the real DG solver advects a front by solid-body rotation on
//! the 24-tree cubed sphere across simulated ranks (exercising the
//! inter-tree face transforms and ghost exchanges), then the machine
//! model produces the weak-scaling efficiency ladder for p = 4 and
//! p = 6 from the measured per-element cost and communication profile.

use forest::{Connectivity, Forest};
use mangll::advection::{DgAdvection, DgParams};
use mangll::kernels::tensor_derivative_flops;
use rhea_bench::{banner, paper_core_counts, Table};
use scomm::{spmd, MachineModel};
use std::sync::Arc;

fn main() {
    banner(
        "Section VII / Fig. 12",
        "DG advection on the cubed sphere (24 octrees)",
    );
    let conn = Arc::new(Connectivity::cubed_sphere(0.55, 1.0));
    let nsteps = 20;
    let order = 2;
    let t0 = std::time::Instant::now();
    let (out, stats) = spmd::run_with_stats(4, move |c| {
        let f = Forest::new_uniform(c, conn.clone(), 1);
        let init = |q: [f64; 3]| {
            let r = (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]).sqrt();
            let d2 = (q[0] / r - 1.0).powi(2) + (q[1] / r).powi(2) + (q[2] / r).powi(2);
            (-d2 / 0.05).exp()
        };
        let mut dg = DgAdvection::new(
            &f,
            DgParams {
                order,
                cfl: 0.25,
                ..Default::default()
            },
            init,
            |q| [-q[1], q[0], 0.0], // solid-body rotation about z
        );
        let m0 = dg.total_mass();
        let dt = dg.stable_dt();
        for _ in 0..nsteps {
            dg.step(dt);
        }
        let m1 = dg.total_mass();
        let umax = dg.u.iter().cloned().fold(0.0f64, f64::max);
        let gmax = c.allreduce_max(&[umax])[0];
        (f.global_count(), m0, m1, gmax, dt * nsteps as f64)
    });
    let wall = t0.elapsed().as_secs_f64();
    let (n_elem, m0, m1, umax, t_sim) = out[0];
    println!(
        "real run: {} elements (24 trees), p = {order}, {nsteps} RK45 steps, rotation angle {:.2} rad",
        n_elem, t_sim
    );
    println!(
        "front max {umax:.3} (bounded), mass drift {:.2}% (faceted-geometry mortar),",
        100.0 * (m1 - m0).abs() / m0.abs().max(1e-300)
    );
    println!(
        "per-rank comm per step: {:.0} msgs, {:.0} KB\n",
        stats[0].p2p_messages as f64 / nsteps as f64,
        stats[0].p2p_bytes as f64 / nsteps as f64 / 1024.0
    );

    // Weak-scaling efficiency ladder (machine model): per-core work fixed
    // at the paper's granularity; communication = face exchanges (5 RK
    // stages) + curve-partition collectives.
    let machine = MachineModel::ranger();
    let elems_per_core = 400.0;
    let host_per_elem_step = wall / (n_elem as f64 * nsteps as f64);
    let mut table = Table::new(&["#cores", "p=4 efficiency", "p=6 efficiency"]);
    let eff = |p_order: usize, cores: usize| -> f64 {
        let n1 = (p_order + 1) as f64;
        let flops = elems_per_core * (tensor_derivative_flops(p_order) as f64 + 40.0 * n1.powi(3));
        // Scale measured per-element cost by the order-dependent work.
        let scale = flops
            / (elems_per_core
                * (tensor_derivative_flops(order) as f64 + 40.0 * ((order + 1) as f64).powi(3)));
        let w = host_per_elem_step
            * machine.fem_efficiency
            * machine.peak_flops_per_core
            * elems_per_core
            * scale;
        let t1 = machine.t_fem_flops(w);
        if cores == 1 {
            return 1.0;
        }
        let face_bytes = 5.0 * 6.0 * elems_per_core.powf(2.0 / 3.0) * n1 * n1 * 8.0;
        let comm =
            5.0 * machine.t_alltoallv(face_bytes, 26) + 2.0 * machine.t_allreduce(8.0, cores);
        t1 / (t1 + comm)
    };
    for &p in &paper_core_counts(32768) {
        table.row(&[
            p.to_string(),
            format!("{:.2}", eff(4, p)),
            format!("{:.2}", eff(6, p)),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper anchors: 90% parallel efficiency at 16,384 cores (p = 4, vs 64),\n\
         83% at 32,768 cores (p = 6, vs 32), adapting every 32 steps; higher order\n\
         ⇒ more interior work per face byte ⇒ better efficiency."
    );
}
