//! Fig. 9 — AMG preconditioner scaling: variable-viscosity FEM Poisson
//! on an adapted octree mesh vs. a 7-point Laplacian on a regular grid.
//!
//! Paper: one AMG setup + 160 V-cycles per data point, ~50K
//! elements/core; the simple Laplace stencil runs faster in absolute
//! terms but shows the *same* scaling behaviour as the harder
//! variable-viscosity adapted-mesh Poisson — hence AMG itself, not the
//! FEM/adaptivity machinery, sets the scaling limit.
//!
//! Here: both operators are assembled for real at a ladder of sizes;
//! setup + 160 V-cycles are timed on the host, and the machine model adds
//! the large-scale communication terms of a weakly-scaled run.

use la::{Amg, AmgOptions, Csr};
use mesh::extract::extract_mesh;
use octree::balance::BalanceKind;
use octree::parallel::DistOctree;
use rhea_bench::{banner, human, paper_core_counts, Table};
use scomm::{spmd, MachineModel};

/// 7-point Laplacian on an n³ regular grid.
fn laplace_7pt(n: usize) -> Csr {
    let id = |i: usize, j: usize, k: usize| i + n * (j + n * k);
    let mut t = Vec::new();
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let c = id(i, j, k);
                let mut diag = 6.0;
                let mut nb = |ii: i64, jj: i64, kk: i64| {
                    if ii >= 0
                        && jj >= 0
                        && kk >= 0
                        && ii < n as i64
                        && jj < n as i64
                        && kk < n as i64
                    {
                        t.push((c, id(ii as usize, jj as usize, kk as usize), -1.0));
                    } else {
                        diag += 0.0; // Dirichlet truncation keeps diag 6
                    }
                };
                nb(i as i64 - 1, j as i64, k as i64);
                nb(i as i64 + 1, j as i64, k as i64);
                nb(i as i64, j as i64 - 1, k as i64);
                nb(i as i64, j as i64 + 1, k as i64);
                nb(i as i64, j as i64, k as i64 - 1);
                nb(i as i64, j as i64, k as i64 + 1);
                t.push((c, c, diag));
            }
        }
    }
    Csr::from_triplets(n * n * n, n * n * n, &t)
}

/// Variable-viscosity FEM Poisson owned block on an adapted mesh.
fn adapted_poisson(level: u8) -> Csr {
    let out = spmd::run(1, move |c| {
        let mut t = DistOctree::new_uniform(c, level);
        t.refine(|o| o.center_unit()[0] < 0.4);
        t.balance(BalanceKind::Full);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = fem::op::DofMap::new(&m, c, 1);
        let mref = &m;
        let src = move |e: usize, outm: &mut [f64]| {
            let ctr = mref.elements[e].center_unit();
            let eta = if ctr[2] > 0.5 { 1e4 } else { 1.0 };
            let k = fem::element::stiffness_matrix(mref.element_size(e), eta);
            for i in 0..8 {
                for j in 0..8 {
                    outm[i * 8 + j] = k[i][j];
                }
            }
        };
        let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
        fem::assembly::assemble_owned_block(&map, &src, Some(&bc))
    });
    out.into_iter().next().unwrap()
}

fn time_amg(a: Csr) -> (usize, f64, f64, usize) {
    let n = a.nrows;
    let t0 = std::time::Instant::now();
    let amg = Amg::new(a, AmgOptions::default());
    let setup = t0.elapsed().as_secs_f64();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let t1 = std::time::Instant::now();
    for _ in 0..160 {
        amg.vcycle(&b, &mut x);
    }
    let cycles = t1.elapsed().as_secs_f64();
    (n, setup, cycles, amg.num_levels())
}

fn main() {
    banner(
        "Figure 9",
        "AMG setup + 160 V-cycles: variable-viscosity FEM Poisson vs 7-point Laplace",
    );
    let mut table = Table::new(&[
        "operator",
        "n (dofs)",
        "levels",
        "setup s",
        "160 V-cycles s",
        "total s",
    ]);
    let mut fem_rows = Vec::new();
    for level in [2u8, 3] {
        let (n, s, v, l) = time_amg(adapted_poisson(level));
        fem_rows.push((n, s + v));
        table.row(&[
            "adapted FEM Poisson".into(),
            human(n as u64),
            l.to_string(),
            format!("{s:.3}"),
            format!("{v:.3}"),
            format!("{:.3}", s + v),
        ]);
    }
    let mut lap_rows = Vec::new();
    for n1 in [12usize, 20] {
        let (n, s, v, l) = time_amg(laplace_7pt(n1));
        lap_rows.push((n, s + v));
        table.row(&[
            "7-point Laplace".into(),
            human(n as u64),
            l.to_string(),
            format!("{s:.3}"),
            format!("{v:.3}"),
            format!("{:.3}", s + v),
        ]);
    }
    table.print();

    // Modeled weak-scaling curve: both operators share the same AMG
    // communication skeleton (level-sweep collectives), so their curves
    // are parallel — the paper's observation.
    println!();
    println!("modeled weak scaling of total preconditioning time (setup + 160 V):");
    let machine = MachineModel::ranger();
    let mut m = Table::new(&["#cores", "Laplace 7pt (s)", "variable-η FEM (s)", "ratio"]);
    // Per-dof host costs from the largest measured rows.
    let fem_per_dof = fem_rows.last().unwrap().1 / fem_rows.last().unwrap().0 as f64;
    let lap_per_dof = lap_rows.last().unwrap().1 / lap_rows.last().unwrap().0 as f64;
    let dofs_per_core = 50_000.0; // the paper's granularity
    let to_model = |sec: f64| sec * machine.fem_efficiency * machine.peak_flops_per_core;
    for &p in &paper_core_counts(16384) {
        let lg = (p.max(2) as f64).log2().ceil();
        let comm = if p == 1 {
            0.0
        } else {
            // ~6 hierarchy levels × (smoother halo + coarse allreduce)
            // per V-cycle, 160 cycles + setup collectives.
            160.0 * 6.0 * (machine.t_alltoallv(4096.0, 6) + machine.t_allreduce(8.0, p))
                + lg * lg * machine.t_allreduce(1024.0, p)
        };
        let lap = machine.t_fem_flops(to_model(lap_per_dof) * dofs_per_core) + comm;
        let femt = machine.t_fem_flops(to_model(fem_per_dof) * dofs_per_core) + comm;
        m.row(&[
            p.to_string(),
            format!("{lap:.2}"),
            format!("{femt:.2}"),
            format!("{:.2}", femt / lap),
        ]);
    }
    m.print();
    println!();
    println!(
        "paper shape anchors: the Laplace curve sits below the variable-viscosity\n\
         FEM curve by a roughly constant factor, and both grow together at scale —\n\
         AMG communication, not the operator, limits scaling."
    );
}
