//! Shared harness utilities for the paper-figure reproductions.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). The harnesses run the *real*
//! distributed algorithms on simulated ranks at host scale, then use the
//! calibrated Ranger [`scomm::MachineModel`] to extend the series to the
//! paper's core counts (DESIGN.md substitution #1). Measured rows are
//! tagged `measured`; extrapolated rows are tagged `modeled`.

use scomm::{CommStats, MachineModel};

/// Print a figure/table banner.
pub fn banner(id: &str, paper: &str) {
    println!("==================================================================");
    println!("{id} — {paper}");
    println!("==================================================================");
}

/// Human-readable element/dof counts (paper style: 67.2K, 2.06M, 1.07B).
pub fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// The core counts the paper sweeps (Figs. 6–8): powers of two plus the
/// odd-sized full-machine runs.
pub fn paper_core_counts(max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..=16)
        .map(|k| 1usize << k)
        .take_while(|&c| c <= max)
        .collect();
    if max >= 62464 && !v.contains(&62464) {
        v.push(62464);
    }
    v
}

/// Modeled end-to-end time for one rank of a bulk-synchronous phase:
/// local work (perfectly partitioned) plus the communication model
/// applied to per-rank message statistics.
pub fn modeled_phase_time(
    machine: &MachineModel,
    flops_per_rank: f64,
    stats: &CommStats,
    cores: usize,
) -> f64 {
    machine.t_fem_flops(flops_per_rank) + machine.t_comm(stats, cores)
}

/// Scale a measured per-rank communication record to a different world
/// size, holding per-rank volume fixed (weak scaling) — collective counts
/// stay, point-to-point volume stays; the model adds the log(P) factors.
pub fn weak_scale_stats(stats: &CommStats) -> CommStats {
    stats.clone()
}

/// One measured collective-timing row: whole-world wall clock per
/// operation for `p` *virtual* ranks multiplexed over a `workers`-slot
/// pool ([`scomm::spmd::run_virtual`]).
#[derive(Debug, Clone, Copy)]
pub struct CollectiveTiming {
    pub p: usize,
    pub workers: usize,
    pub reps: usize,
    /// ns per barrier round (all `p` ranks enter and leave).
    pub barrier_ns: f64,
    /// ns per 8-byte `allreduce_sum` round.
    pub allreduce_ns: f64,
    /// ns per `allgather_u64` round (8 bytes contributed per rank).
    pub allgather_ns: f64,
    /// ns per ring hop: every rank posts an irecv, isends 8 bytes to its
    /// successor and waits — one world-wide nearest-neighbor round.
    pub ring_hop_ns: f64,
}

/// Measure the core collectives at `p` virtual ranks. Each figure is the
/// wall time a complete `p`-rank round takes on this host, timed between
/// collective fences so every rank participates in every timed round;
/// thread-spawn cost is excluded by a warm-up barrier. These are the
/// *measured* points the PR 6 harness fits against the [`MachineModel`]
/// α–β collective terms (see `pr6_vrank` and EXPERIMENTS.md).
pub fn measure_collectives(p: usize, workers: usize, reps: usize) -> CollectiveTiming {
    use std::time::Instant;
    assert!(reps > 0);
    // Microbenchmark bodies are shallow; small stacks keep the virtual
    // address reservation modest at P = 4096.
    let cfg = scomm::spmd::VirtualCfg {
        workers,
        stack_bytes: 256 << 10,
        ..Default::default()
    };
    let (out, _) = scomm::spmd::run_virtual_cfg(p, cfg, move |c| {
        let me = c.rank() as u64;
        c.barrier(); // every rank registered and scheduled once
        let t0 = Instant::now();
        for _ in 0..reps {
            c.barrier();
        }
        let barrier = t0.elapsed().as_nanos() as f64 / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.allreduce_sum(&[me as f64]);
        }
        let allreduce = t0.elapsed().as_nanos() as f64 / reps as f64;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = c.allgather_u64(me);
        }
        let allgather = t0.elapsed().as_nanos() as f64 / reps as f64;
        let next = (c.rank() + 1) % c.size();
        let prev = (c.rank() + c.size() - 1) % c.size();
        c.barrier();
        let t0 = Instant::now();
        let mut token = vec![me];
        for hop in 0..reps as u64 {
            let req = c.irecv::<u64>(prev, hop);
            c.isend(next, hop, &token).wait();
            token = c.wait(req);
        }
        c.barrier();
        let ring = t0.elapsed().as_nanos() as f64 / reps as f64;
        (barrier, allreduce, allgather, ring)
    });
    let (barrier_ns, allreduce_ns, allgather_ns, ring_hop_ns) = out[0];
    CollectiveTiming {
        p,
        workers,
        reps,
        barrier_ns,
        allreduce_ns,
        allgather_ns,
        ring_hop_ns,
    }
}

/// Least-squares line `t = a + b·x` through the measured points;
/// returns `(a, b)`. Used to fit measured collective rounds against
/// world size P.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points to fit a line");
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a, b)
}

/// A simple aligned table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Shared full-convection workload used by the Fig. 8 and Fig. 10
/// harnesses: runs RHEA (Stokes + transport + AMR every `adapt_every`
/// steps) on `ranks` simulated ranks with tracing on, and returns the
/// per-rank telemetry profiles, the element count, and total MINRES
/// iterations. The profiles carry the full span/series/histogram record —
/// write them with [`obs::ObsSession`] or collapse them with
/// [`rhea::timers::PhaseTimers::from_summary`].
pub fn convection_workload_traced(
    ranks: usize,
    level: u8,
    steps: usize,
    adapt_every: usize,
) -> (Vec<obs::RankProfile>, u64, usize) {
    use rhea::convection::{ConvectionParams, ConvectionSim};
    use rhea::rheology::ArrheniusLaw;
    let (out, profiles) = scomm::spmd::run_traced(ranks, move |c, _rec| {
        let params = ConvectionParams {
            rayleigh: 1e5,
            adapt_every,
            adapt: rhea::adapt::AdaptParams {
                target_elements: 8 * 8u64.pow(level as u32 - 1),
                max_level: level + 2,
                min_level: 1,
                ..Default::default()
            },
            stokes: stokes::StokesOptions {
                tol: 1e-6,
                max_iter: 500,
                ..Default::default()
            },
            picard_steps: 1,
            ..Default::default()
        };
        let mut sim = ConvectionSim::new(c, level, params);
        let law = ArrheniusLaw::default();
        let mut iters = 0;
        for _ in 0..steps {
            let rep = sim.step(&law);
            iters += rep.minres_iterations;
        }
        (sim.tree.global_count(), iters)
    });
    let (n_elem, iters) = out[0];
    (profiles, n_elem, iters)
}

/// Classic view of [`convection_workload_traced`]: rank 0's phase timers
/// (via the obs compat mapping), the element count, and total MINRES
/// iterations.
pub fn convection_workload(
    ranks: usize,
    level: u8,
    steps: usize,
    adapt_every: usize,
) -> (rhea::timers::PhaseTimers, u64, usize) {
    let (profiles, n_elem, iters) = convection_workload_traced(ranks, level, steps, adapt_every);
    let timers = rhea::timers::PhaseTimers::from_summary(&profiles[0].summary);
    (timers, n_elem, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_formats() {
        assert_eq!(human(532), "532");
        assert_eq!(human(67_200), "67.2K");
        assert_eq!(human(2_060_000), "2.06M");
        assert_eq!(human(1_070_000_000), "1.07B");
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = [256.0, 1024.0, 4096.0]
            .iter()
            .map(|&p| (p, 1500.0 + 3.25 * p))
            .collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 1500.0).abs() < 1e-6, "a = {a}");
        assert!((b - 3.25).abs() < 1e-9, "b = {b}");
    }

    #[test]
    fn measured_collectives_are_positive_and_returned_per_op() {
        let t = measure_collectives(8, 3, 2);
        assert_eq!((t.p, t.workers, t.reps), (8, 3, 2));
        assert!(t.barrier_ns > 0.0);
        assert!(t.allreduce_ns > 0.0);
        assert!(t.allgather_ns > 0.0);
        assert!(t.ring_hop_ns > 0.0);
    }

    #[test]
    fn core_counts_include_full_machine() {
        let v = paper_core_counts(62464);
        assert!(v.contains(&1) && v.contains(&16384) && v.contains(&62464));
        let w = paper_core_counts(8);
        assert_eq!(w, vec![1, 2, 4, 8]);
    }

    /// The figure harnesses' acceptance path: a 4-rank traced run must
    /// produce a valid Chrome trace with one track per rank and a
    /// run manifest.
    #[test]
    fn traced_workload_writes_figure_artifacts() {
        let dir = std::env::temp_dir().join(format!("rhea-bench-obs-{}", std::process::id()));
        let (profiles, n_elem, iters) = convection_workload_traced(4, 2, 2, 2);
        assert_eq!(profiles.len(), 4);
        assert!(n_elem > 0 && iters > 0);
        let extra = obs::Value::object([("ranks", obs::Value::from(4u64))]);
        let written = obs::ObsSession::with_dir("fig_acceptance", &dir)
            .write(&profiles, extra)
            .expect("write obs artifacts");

        let trace = obs::json::parse(&std::fs::read_to_string(&written.trace).unwrap())
            .expect("trace is valid JSON");
        let events = trace.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let mut track_tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap())
            .collect();
        track_tids.sort_unstable();
        assert_eq!(track_tids, vec![0, 1, 2, 3], "one track per simulated rank");
        // Real span events exist on every rank's track.
        for tid in 0..4u64 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("tid").and_then(|t| t.as_u64()) == Some(tid)
                }),
                "rank {tid} has complete events"
            );
        }

        let manifest = obs::json::parse(&std::fs::read_to_string(&written.manifest).unwrap())
            .expect("manifest is valid JSON");
        assert_eq!(
            manifest.get("schema").and_then(|v| v.as_str()),
            Some("obs.run.v1")
        );
        assert_eq!(manifest.get("nranks").and_then(|v| v.as_u64()), Some(4));
        let merged = manifest.get("merged").unwrap();
        assert!(merged.get("phases").unwrap().get("MINRES").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
