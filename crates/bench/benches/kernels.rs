//! Criterion micro-benchmarks for the kernels underlying the figure
//! harnesses, plus the ablation studies called out in DESIGN.md §4:
//!
//! * `ablation_balance`   — buffered-sweep 2:1 balance vs naive
//!   one-violator-at-a-time (motivates the paper's ripple propagation);
//! * `ablation_partition` — Morton-curve partition vs naive block
//!   partition of *unsorted* leaves, measured by inter-part adjacency
//!   (communication surface);
//! * `ablation_precond`   — AMG V-cycle vs Jacobi preconditioning of the
//!   variable-viscosity Poisson block (CG iteration counts);
//! * DG derivative kernels, Morton ops, mesh extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use la::{cg, Amg, AmgOptions, Csr};
use mangll::kernels::ElementDerivative;
use mesh::extract::extract_mesh;
use octree::balance::{balance_local, balance_local_naive};
use octree::ops::{new_tree, refine};
use octree::parallel::DistOctree;
use octree::{Octant, MAX_LEVEL, ROOT_LEN};
use scomm::spmd;

fn center_spike(depth: u8) -> Vec<Octant> {
    let target = Octant::new(
        ROOT_LEN / 2 - 1,
        ROOT_LEN / 2 - 1,
        ROOT_LEN / 2 - 1,
        MAX_LEVEL,
    );
    let mut t = new_tree(1);
    for _ in 1..depth {
        refine(&mut t, |o| o.contains(&target));
    }
    t
}

fn bench_morton(c: &mut Criterion) {
    c.bench_function("morton_encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u32 {
                let k =
                    octree::morton::morton_key(i * 7 % ROOT_LEN, i * 13 % ROOT_LEN, i % ROOT_LEN);
                let (x, _, _) = octree::morton::morton_decode(k);
                acc = acc.wrapping_add(x as u64);
            }
            acc
        })
    });
}

fn bench_balance_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_balance");
    g.sample_size(10);
    g.bench_function("buffered_sweeps", |b| {
        b.iter_batched(
            || center_spike(6),
            |mut t| balance_local(&mut t),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("naive_one_at_a_time", |b| {
        b.iter_batched(
            || center_spike(6),
            |mut t| balance_local_naive(&mut t),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Count pairs of face-adjacent leaves placed in different parts — the
/// communication surface a partition induces.
fn adjacency_cut(leaves: &[Octant], part_of: impl Fn(usize) -> usize) -> usize {
    let mut cut = 0;
    for (i, o) in leaves.iter().enumerate() {
        for (dx, dy, dz) in Octant::neighbor_directions() {
            if let Some(n) = o.neighbor(dx, dy, dz) {
                if let Some(j) = octree::ops::find_containing(leaves, &n) {
                    if part_of(i) != part_of(j) {
                        cut += 1;
                    }
                }
            }
        }
    }
    cut / 2
}

fn bench_partition_ablation(c: &mut Criterion) {
    // Not a timing ablation: report the cut sizes once, then bench the
    // partition computation itself.
    let mut t = center_spike(5);
    balance_local(&mut t);
    let n = t.len();
    let parts = 8;
    // Morton partition: contiguous curve segments (leaves are sorted).
    let morton_cut = adjacency_cut(&t, |i| i * parts / n);
    // Naive partition: round-robin by index of the *shuffled* leaf list —
    // equivalent to ignoring locality entirely.
    let mut shuffled: Vec<usize> = (0..n).collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        shuffled.swap(i, (state % (i as u64 + 1)) as usize);
    }
    let naive_assignment: Vec<usize> = {
        let mut a = vec![0; n];
        for (pos, &leaf) in shuffled.iter().enumerate() {
            a[leaf] = pos * parts / n;
        }
        a
    };
    let naive_cut = adjacency_cut(&t, |i| naive_assignment[i]);
    eprintln!(
        "[ablation_partition] {n} leaves into {parts} parts: \
         Morton-curve cut = {morton_cut} adjacent pairs, random-block cut = {naive_cut} \
         ({:.1}× more communication surface)",
        naive_cut as f64 / morton_cut.max(1) as f64
    );
    c.bench_function("partition_tree_8ranks", |b| {
        b.iter(|| {
            spmd::run(8, |comm| {
                let mut dt = DistOctree::new_uniform(comm, 3);
                dt.refine(|o| o.center_unit()[0] < 0.3);
                dt.partition()
            })
        })
    });
}

fn bench_precond_ablation(c: &mut Criterion) {
    // Variable-viscosity Poisson block (serial) — compare CG iterations
    // and time with AMG vs Jacobi.
    let out = spmd::run(1, |comm| {
        let mut t = DistOctree::new_uniform(comm, 3);
        t.refine(|o| o.center_unit()[0] < 0.4);
        t.balance(octree::balance::BalanceKind::Full);
        let m = extract_mesh(&t, [1.0, 1.0, 1.0]);
        let map = fem::op::DofMap::new(&m, comm, 1);
        let mref = &m;
        let src = move |e: usize, outm: &mut [f64]| {
            let eta = if mref.elements[e].center_unit()[2] > 0.5 {
                1e4
            } else {
                1.0
            };
            let k = fem::element::stiffness_matrix(mref.element_size(e), eta);
            for i in 0..8 {
                for j in 0..8 {
                    outm[i * 8 + j] = k[i][j];
                }
            }
        };
        let bc: Vec<bool> = (0..m.n_owned).map(|d| m.dof_on_boundary(d)).collect();
        fem::assembly::assemble_owned_block(&map, &src, Some(&bc))
    });
    let a: Csr = out.into_iter().next().unwrap();
    let n = a.nrows;
    let amg = Amg::new(a.clone(), AmgOptions::default());
    let d = a.diagonal();
    let jacobi = (n, move |x: &[f64], y: &mut [f64]| {
        for i in 0..x.len() {
            y[i] = x[i] / d[i];
        }
    });
    let b_vec = vec![1.0; n];
    // Report iteration counts once.
    let mut x = vec![0.0; n];
    let amg_info = cg(
        &a,
        Some(&amg),
        &b_vec,
        &mut x,
        1e-8,
        2000,
        la::krylov::euclidean_dot,
    );
    x.fill(0.0);
    let jac_info = cg(
        &a,
        Some(&jacobi),
        &b_vec,
        &mut x,
        1e-8,
        2000,
        la::krylov::euclidean_dot,
    );
    eprintln!(
        "[ablation_precond] n = {n}, viscosity contrast 1e4: \
         CG+AMG = {} iterations, CG+Jacobi = {} iterations",
        amg_info.iterations, jac_info.iterations
    );
    let mut g = c.benchmark_group("ablation_precond");
    g.sample_size(10);
    g.bench_function("cg_amg_vcycle", |b| {
        b.iter(|| {
            let mut x = vec![0.0; n];
            cg(
                &a,
                Some(&amg),
                &b_vec,
                &mut x,
                1e-8,
                2000,
                la::krylov::euclidean_dot,
            )
        })
    });
    g.bench_function("cg_jacobi", |b| {
        b.iter(|| {
            let mut x = vec![0.0; n];
            cg(
                &a,
                Some(&jacobi),
                &b_vec,
                &mut x,
                1e-8,
                2000,
                la::krylov::euclidean_dot,
            )
        })
    });
    g.finish();
}

fn bench_dg_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dg_derivative");
    for p in [2usize, 4, 6] {
        let ed = ElementDerivative::new(p);
        let n3 = ed.n3();
        let nelem = 64;
        let u: Vec<f64> = (0..n3 * nelem).map(|i| (i % 97) as f64 / 97.0).collect();
        let mut out = vec![0.0; 3 * n3 * nelem];
        g.bench_function(format!("matrix_p{p}"), |b| {
            b.iter(|| ed.apply_matrix_batch(&u, &mut out, nelem))
        });
        g.bench_function(format!("tensor_p{p}"), |b| {
            b.iter(|| ed.apply_tensor_batch(&u, &mut out, nelem))
        });
    }
    g.finish();
}

fn bench_extract_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("amr_functions");
    g.sample_size(10);
    g.bench_function("extract_mesh_level3_adapted", |b| {
        b.iter(|| {
            spmd::run(1, |comm| {
                let mut t = DistOctree::new_uniform(comm, 3);
                t.refine(|o| o.center_unit()[1] > 0.6);
                t.balance(octree::balance::BalanceKind::Full);
                extract_mesh(&t, [1.0, 1.0, 1.0]).n_owned
            })
        })
    });
    g.bench_function("balance_after_spike", |b| {
        b.iter_batched(
            || center_spike(6),
            |mut t| balance_local(&mut t),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_morton,
    bench_balance_ablation,
    bench_partition_ablation,
    bench_precond_ablation,
    bench_dg_kernels,
    bench_extract_mesh
);
criterion_main!(benches);
