//! Property tests for the cross-rank merge: `Reduce` promises an
//! associative, commutative monoid (the MPI-reduction contract), so a
//! world's summaries can be combined tree-wise, pairwise, or in rank
//! order with identical results. All three laws are checked over
//! randomly generated per-rank summaries.

use obs::{Reduce, Summary};
use proptest::prelude::*;

/// One random telemetry event: `sel` picks both the name and the kind
/// (phase / counter / histogram sample); `a`, `b` are the magnitudes.
type Op = (u8, u32, u32);

const NAMES: [&str; 6] = [
    "MINRES",
    "AMGSolve",
    "BalanceTree",
    "TimeIntegration",
    "comm:allreduce",
    "comm.bytes",
];

/// Deterministically fold a list of generated events into a Summary,
/// touching all three registries (phases, counters, histograms).
fn build(ops: &[Op]) -> Summary {
    let mut s = Summary::default();
    for &(sel, a, b) in ops {
        let name = NAMES[(sel % NAMES.len() as u8) as usize].to_string();
        match sel % 3 {
            0 => {
                let ps = s.phases.entry(name).or_default();
                if ps.cat.is_empty() {
                    ps.cat = "t".to_string();
                }
                ps.count += 1;
                let (incl, excl) = (a.max(b) as u64, a.min(b) as u64);
                ps.incl_ns += incl;
                ps.excl_ns += excl;
            }
            1 => *s.counters.entry(name).or_insert(0) += a as u64,
            _ => s.hists.entry(name).or_default().record(a as u64),
        }
    }
    s
}

fn merged(a: &Summary, b: &Summary) -> Summary {
    let mut m = a.clone();
    m.reduce(b);
    m
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..=255, 0u32..=1_000_000, 0u32..=1_000_000), 0..24)
}

proptest! {
    #[test]
    fn merge_is_commutative(x in ops(), y in ops()) {
        let (a, b) = (build(&x), build(&y));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(x in ops(), y in ops(), z in ops()) {
        let (a, b, c) = (build(&x), build(&y), build(&z));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn default_is_the_identity(x in ops()) {
        let a = build(&x);
        prop_assert_eq!(merged(&a, &Summary::default()), a.clone());
        prop_assert_eq!(merged(&Summary::default(), &a), a);
    }

    #[test]
    fn reduce_all_equals_left_fold(x in ops(), y in ops(), z in ops()) {
        let parts = [build(&x), build(&y), build(&z)];
        let folded = parts.iter().fold(Summary::default(), |acc, s| merged(&acc, s));
        prop_assert_eq!(Summary::reduce_all(parts.iter()), folded);
    }
}
