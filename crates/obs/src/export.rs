//! Exporters: Chrome-trace JSON, JSONL event log, and the run manifest.
//!
//! * **Chrome trace** — load `results/obs/<name>.trace.json` in
//!   `chrome://tracing` (or Perfetto's legacy loader). Each simulated
//!   rank is one track (`tid`), all under one process (`pid` 0).
//! * **JSONL** — one JSON object per line, one line per span or instant
//!   event, for ad-hoc `grep`/scripting.
//! * **Manifest** — one machine-readable JSON per run with the merged
//!   cross-rank summary, per-rank summaries, and harness-provided extras;
//!   the bench harnesses and any future `BENCH_*.json` trajectory consume
//!   this.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::{ToJson, Value};
use crate::rec::RankProfile;
use crate::summary::{Reduce, Summary};

/// Build the Chrome-trace JSON document for a set of rank profiles.
///
/// Uses the JSON-object form (`{"traceEvents": [...]}`) with complete
/// ("X") events for spans, instant ("i") events, and thread-name metadata
/// so each rank's track is labeled.
pub fn chrome_trace(profiles: &[RankProfile]) -> Value {
    let mut events = Vec::new();
    for p in profiles {
        events.push(Value::object([
            ("name", Value::from("thread_name")),
            ("ph", Value::from("M")),
            ("pid", Value::from(0u64)),
            ("tid", Value::from(p.rank)),
            (
                "args",
                Value::object([("name", Value::from(format!("rank {}", p.rank)))]),
            ),
        ]));
        for s in &p.spans {
            events.push(Value::object([
                ("name", Value::from(s.name.as_str())),
                ("cat", Value::from(s.cat.as_str())),
                ("ph", Value::from("X")),
                ("ts", Value::from(s.start_ns as f64 / 1e3)), // µs
                ("dur", Value::from(s.dur_ns as f64 / 1e3)),
                ("pid", Value::from(0u64)),
                ("tid", Value::from(p.rank)),
            ]));
        }
        for e in &p.instants {
            events.push(Value::object([
                ("name", Value::from(e.name.as_str())),
                ("cat", Value::from("instant")),
                ("ph", Value::from("i")),
                ("ts", Value::from(e.ts_ns as f64 / 1e3)),
                ("s", Value::from("t")), // thread-scoped
                ("pid", Value::from(0u64)),
                ("tid", Value::from(p.rank)),
                ("args", e.args.clone()),
            ]));
        }
    }
    Value::object([
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::from("ms")),
    ])
}

/// One JSON object per event, newline-delimited.
pub fn jsonl_events(profiles: &[RankProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        for s in &p.spans {
            let v = Value::object([
                ("kind", Value::from("span")),
                ("rank", Value::from(p.rank)),
                ("name", Value::from(s.name.as_str())),
                ("cat", Value::from(s.cat.as_str())),
                ("start_ns", Value::from(s.start_ns)),
                ("dur_ns", Value::from(s.dur_ns)),
                ("depth", Value::from(s.depth as u64)),
            ]);
            out.push_str(&v.to_json());
            out.push('\n');
        }
        for e in &p.instants {
            let v = Value::object([
                ("kind", Value::from("instant")),
                ("rank", Value::from(p.rank)),
                ("name", Value::from(e.name.as_str())),
                ("ts_ns", Value::from(e.ts_ns)),
                ("args", e.args.clone()),
            ]);
            out.push_str(&v.to_json());
            out.push('\n');
        }
    }
    out
}

/// Build the run-manifest JSON for a named run.
pub fn run_manifest(name: &str, profiles: &[RankProfile], extra: Value) -> Value {
    let merged = Summary::reduce_all(profiles.iter().map(|p| &p.summary));
    let per_rank: Vec<Value> = profiles
        .iter()
        .map(|p| {
            Value::object([
                ("rank", Value::from(p.rank)),
                ("summary", p.summary.to_json_value()),
                (
                    "series",
                    Value::object(p.series.iter().map(|(k, vs)| {
                        (
                            k.clone(),
                            Value::Arr(vs.iter().map(|&v| Value::from(v)).collect()),
                        )
                    })),
                ),
            ])
        })
        .collect();
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Value::object([
        ("schema", Value::from("obs.run.v1")),
        ("name", Value::from(name)),
        ("created_unix", Value::from(created_unix)),
        ("nranks", Value::from(profiles.len())),
        ("merged", merged.to_json_value()),
        ("per_rank", Value::Arr(per_rank)),
        ("extra", extra),
    ])
}

/// Paths written by [`ObsSession::write`].
#[derive(Debug, Clone)]
pub struct WrittenRun {
    pub manifest: PathBuf,
    pub trace: PathBuf,
    pub events: PathBuf,
}

/// A named observability run bound to an output directory
/// (`results/obs/` by default).
pub struct ObsSession {
    name: String,
    out_dir: PathBuf,
}

impl ObsSession {
    /// A run writing under the repository's canonical `results/obs/`.
    pub fn new(name: impl Into<String>) -> ObsSession {
        ObsSession {
            name: name.into(),
            out_dir: PathBuf::from("results/obs"),
        }
    }

    /// A run writing under an explicit directory (tests use a temp dir).
    pub fn with_dir(name: impl Into<String>, dir: impl AsRef<Path>) -> ObsSession {
        ObsSession {
            name: name.into(),
            out_dir: dir.as_ref().to_path_buf(),
        }
    }

    /// Write manifest + Chrome trace + JSONL event log for the profiles.
    pub fn write(&self, profiles: &[RankProfile], extra: Value) -> io::Result<WrittenRun> {
        fs::create_dir_all(&self.out_dir)?;
        let manifest = self.out_dir.join(format!("{}.json", self.name));
        let trace = self.out_dir.join(format!("{}.trace.json", self.name));
        let events = self.out_dir.join(format!("{}.events.jsonl", self.name));
        fs::write(
            &manifest,
            run_manifest(&self.name, profiles, extra).to_json(),
        )?;
        fs::write(&trace, chrome_trace(profiles).to_json())?;
        fs::write(&events, jsonl_events(profiles))?;
        Ok(WrittenRun {
            manifest,
            trace,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::rec::Recorder;

    fn two_rank_profiles() -> Vec<RankProfile> {
        (0..2)
            .map(|rank| {
                let rec = Recorder::new_manual_clock(rank);
                let g = rec.span_cat("BalanceTree", "amr");
                rec.advance_clock(1_000 + rank as u64 * 500);
                {
                    let _c = rec.span_cat("comm:allreduce", "comm");
                    rec.advance_clock(100);
                }
                drop(g);
                rec.record_value("comm.bytes", 64 * (rank as u64 + 1));
                rec.instant(
                    "mark",
                    json::Value::object([("n", json::Value::from(7u64))]),
                );
                rec.profile()
            })
            .collect()
    }

    #[test]
    fn chrome_trace_round_trips_and_has_one_track_per_rank() {
        let profiles = two_rank_profiles();
        let doc = chrome_trace(&profiles);
        let text = doc.to_json();
        let reparsed = json::parse(&text).expect("exporter emits valid JSON");
        assert_eq!(reparsed, doc, "round-trip through the parser");
        let events = reparsed.get("traceEvents").unwrap().as_array().unwrap();
        // Distinct tids must match the rank set.
        let mut tids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
            .collect();
        tids.sort();
        tids.dedup();
        assert_eq!(tids, vec![0, 1]);
        // Spans carry microsecond ts/dur.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert!(span.get("dur").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let profiles = two_rank_profiles();
        let text = jsonl_events(&profiles);
        let mut lines = 0;
        for line in text.lines() {
            json::parse(line).expect("every JSONL line is a JSON object");
            lines += 1;
        }
        assert_eq!(lines, 4 + 2); // 2 spans + 1 instant per rank
    }

    #[test]
    fn manifest_merges_ranks() {
        let profiles = two_rank_profiles();
        let m = run_manifest("unit", &profiles, Value::Null);
        assert_eq!(m.get("nranks").unwrap().as_u64(), Some(2));
        let merged = m.get("merged").unwrap();
        let bt = merged.get("phases").unwrap().get("BalanceTree").unwrap();
        assert_eq!(bt.get("count").unwrap().as_u64(), Some(2));
        let hist = merged.get("histograms").unwrap().get("comm.bytes").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        // Valid JSON end-to-end.
        json::parse(&m.to_json()).unwrap();
    }

    #[test]
    fn session_writes_three_files() {
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        let session = ObsSession::with_dir("unit_run", &dir);
        let written = session
            .write(&two_rank_profiles(), Value::Obj(vec![]))
            .unwrap();
        for p in [&written.manifest, &written.trace, &written.events] {
            assert!(p.exists(), "{p:?} must exist");
        }
        let manifest = std::fs::read_to_string(&written.manifest).unwrap();
        json::parse(&manifest).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
