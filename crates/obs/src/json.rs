//! A small self-contained JSON value type with a writer and a parser.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so the
//! exporters serialize through this module instead. The writer emits
//! RFC 8259-conformant output; the parser accepts the same subset (no
//! comments, no trailing commas) and exists chiefly so that exports can be
//! round-trip-tested and so harnesses can read manifests back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object entries in insertion order (stable output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(entries: I) -> Value {
        Value::Obj(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Append an entry to an object value (panics on non-objects).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        match self {
            Value::Obj(entries) => entries.push((key.into(), value)),
            _ => panic!("insert on non-object JSON value"),
        }
    }

    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl<K: Into<String>> FromIterator<(K, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (K, Value)>>(iter: I) -> Value {
        Value::object(iter)
    }
}

/// Conversion to a JSON value (the stand-in for `serde::Serialize`).
pub trait ToJson {
    fn to_json_value(&self) -> Value;
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())))
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values (within exact-f64 range) print without a dot.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (one top-level value, trailing whitespace ok).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine, else replacement.
                            if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid; find its length from the lead byte).
                    let start = self.pos;
                    let lead = self.bytes[start];
                    let len = match lead {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        // self.pos is at 'u'; the four digits follow.
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4; // leaves pos on the final hex digit; caller advances
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            offset: start,
            message: "bad number".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let v = Value::object([
            ("name", Value::from("BalanceTree")),
            ("count", Value::from(3u64)),
            ("secs", Value::from(0.25)),
            (
                "tags",
                Value::array([Value::from("amr"), Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"BalanceTree","count":3,"secs":0.25,"tags":["amr",null,true]}"#
        );
    }

    #[test]
    fn escapes_and_parses_back() {
        let v = Value::object([("k\n\"x\"", Value::from("a\\b\tc"))]);
        let s = v.to_json();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Num(0.0));
        assert_eq!(
            parse("9007199254740991").unwrap(),
            Value::Num(9007199254740991.0)
        );
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::array([
            Value::object([("a", Value::array([Value::from(1u64), Value::from(2u64)]))]),
            Value::Obj(vec![]),
            Value::Arr(vec![]),
            Value::from("µs — unicode ✓"),
        ]);
        let reparsed = parse(&v.to_json()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{}{}").is_err());
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse(r#""é😀""#).unwrap(), Value::Str("é😀".into()));
    }
}
