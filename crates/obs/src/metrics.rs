//! Counters and log-scale histograms.

use crate::json::{ToJson, Value};

/// A base-2 log-scale histogram of `u64` samples (message sizes, iteration
/// counts, per-step element deltas, …).
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
/// `[2^(b−1), 2^b)`. Merging histograms is associative and commutative,
/// so per-rank histograms can be reduced across a world in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[b]` = number of samples in bucket `b` (see type docs).
    pub buckets: [u64; 65],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of a bucket.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 1)
        } else {
            (1u64 << (b - 1), if b == 64 { u64::MAX } else { 1u64 << b })
        }
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another histogram into this one (associative, commutative).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

impl ToJson for LogHistogram {
    fn to_json_value(&self) -> Value {
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| Value::array([Value::from(b), Value::from(c)]))
            .collect();
        Value::object([
            ("count", Value::from(self.count)),
            ("sum", Value::from(self.sum)),
            (
                "min",
                Value::from(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max", Value::from(self.max)),
            ("mean", Value::from(self.mean())),
            ("buckets", Value::Arr(sparse)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        for b in 0..=64usize {
            let (lo, hi) = LogHistogram::bucket_range(b);
            assert_eq!(LogHistogram::bucket_of(lo), b);
            assert_eq!(LogHistogram::bucket_of(hi - 1), b);
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = LogHistogram::new();
        a.record(0);
        a.record(5);
        a.record(1024);
        let mut b = LogHistogram::new();
        b.record(7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.count, 4);
        assert_eq!(ab.sum, 1036);
        assert_eq!(ab.min, 0);
        assert_eq!(ab.max, 1024);
        assert_eq!(ab.buckets[3], 2); // 5 and 7 share [4, 8)
    }

    #[test]
    fn empty_histogram_serializes_cleanly() {
        let h = LogHistogram::new();
        let j = h.to_json_value();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("min").unwrap().as_u64(), Some(0));
    }
}
