//! The per-rank recorder: hierarchical spans, counters, histograms,
//! series, and instant events.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Value;
use crate::metrics::LogHistogram;
use crate::summary::{PhaseStats, Summary};

/// Process-wide clock epoch, shared by all recorders so that the ranks of
/// a simulated world land on one aligned timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Spans kept in the detailed trace per rank; beyond this the aggregate
/// summary keeps accumulating but the event list stops growing (the
/// `obs.dropped_spans` counter records how many were elided).
const MAX_TRACE_SPANS: usize = 1 << 18;

/// A completed span in the detailed per-rank trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub name: String,
    pub cat: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: u16,
}

/// A point-in-time event with structured arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    pub name: String,
    pub ts_ns: u64,
    pub args: Value,
}

struct OpenSpan {
    name: String,
    cat: &'static str,
    start_ns: u64,
    /// Total inclusive time of already-closed children.
    child_ns: u64,
}

struct Inner {
    rank: usize,
    /// Purely virtual clock (tests): `now` is `skew_ns` alone, real time
    /// never advances it.
    manual_clock: bool,
    /// When false, per-event detail (spans, instants) is not stored —
    /// only the mergeable [`Summary`] accumulates, at O(1) memory per
    /// phase. This is what lets a P = 4096 virtual run trace every rank
    /// without holding 4096 Chrome-trace tracks in memory.
    trace_detail: bool,
    /// Virtual time offset (see [`Recorder::advance_clock`]).
    skew_ns: u64,
    spans: Vec<SpanEvent>,
    instants: Vec<InstantEvent>,
    stack: Vec<OpenSpan>,
    summary: Summary,
    series: BTreeMap<String, Vec<f64>>,
}

/// One rank's tracing handle. Cheap to clone (clones share state); holds
/// interior mutability so `&Recorder` records — mirroring how
/// `scomm::Comm` is threaded through the solver layers. Not `Send`: a
/// recorder belongs to its rank's thread, like the `Comm` it rides with.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<RefCell<Inner>>,
}

/// RAII guard returned by [`Recorder::span`]; closes the span on drop.
pub struct SpanGuard {
    rec: Recorder,
    closed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.closed {
            self.rec.close_span();
            self.closed = true;
        }
    }
}

/// Everything one rank recorded: the mergeable [`Summary`] plus the
/// ordered detail (spans, instants, series) that powers the exporters.
/// Plain data — `Send`, unlike the recorder itself — so SPMD closures can
/// return it through `spmd::run`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankProfile {
    pub rank: usize,
    pub spans: Vec<SpanEvent>,
    pub instants: Vec<InstantEvent>,
    pub summary: Summary,
    pub series: BTreeMap<String, Vec<f64>>,
}

impl Recorder {
    pub fn new(rank: usize) -> Recorder {
        Self::build(rank, false, true)
    }

    /// A recorder on a purely virtual clock driven by
    /// [`Recorder::advance_clock`] — time attribution becomes exactly
    /// deterministic. Intended for tests.
    pub fn new_manual_clock(rank: usize) -> Recorder {
        Self::build(rank, true, true)
    }

    /// A recorder that keeps only the mergeable [`Summary`] (phase
    /// timings, counters, histograms — all exact) and discards per-event
    /// detail: no span list, no instants, so memory stays O(phases)
    /// instead of O(events). Large-P virtual runs attach these to the
    /// ranks beyond the Chrome-trace track cap; summaries from all ranks
    /// still merge exactly via [`crate::Reduce`].
    pub fn new_summary_only(rank: usize) -> Recorder {
        Self::build(rank, false, false)
    }

    fn build(rank: usize, manual_clock: bool, trace_detail: bool) -> Recorder {
        // Touch the epoch so timestamps start near zero for the first
        // recorder created in the process.
        let _ = epoch_ns();
        Recorder {
            inner: Rc::new(RefCell::new(Inner {
                rank,
                manual_clock,
                trace_detail,
                skew_ns: 0,
                spans: Vec::new(),
                instants: Vec::new(),
                stack: Vec::new(),
                summary: Summary::default(),
                series: BTreeMap::new(),
            })),
        }
    }

    pub fn rank(&self) -> usize {
        self.inner.borrow().rank
    }

    /// Current timestamp on this recorder's clock, in nanoseconds since
    /// the process-wide epoch. Pair with [`Recorder::add_span_external`]
    /// to place externally measured intervals on the shared timeline.
    pub fn now_ns(&self) -> u64 {
        let inner = self.inner.borrow();
        if inner.manual_clock {
            inner.skew_ns
        } else {
            epoch_ns() + inner.skew_ns
        }
    }

    /// Advance this recorder's clock by `ns` without sleeping (with
    /// [`Recorder::new_manual_clock`], the only thing that moves time).
    pub fn advance_clock(&self, ns: u64) {
        self.inner.borrow_mut().skew_ns += ns;
    }

    /// Open a span in the default category. Close it by dropping the
    /// guard (or via [`Recorder::with`]).
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.span_cat(name, "phase")
    }

    /// Open a span in an explicit category ("amr", "solve", "comm", …).
    pub fn span_cat(&self, name: impl Into<String>, cat: &'static str) -> SpanGuard {
        let start_ns = self.now_ns();
        self.inner.borrow_mut().stack.push(OpenSpan {
            name: name.into(),
            cat,
            start_ns,
            child_ns: 0,
        });
        SpanGuard {
            rec: self.clone(),
            closed: false,
        }
    }

    /// Run `f` under a span in the default category.
    pub fn with<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        self.with_cat(name, "phase", f)
    }

    /// Run `f` under a span in an explicit category.
    pub fn with_cat<R>(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        f: impl FnOnce() -> R,
    ) -> R {
        let _g = self.span_cat(name, cat);
        f()
    }

    fn close_span(&self) {
        let now = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        let open = inner
            .stack
            .pop()
            .expect("span guard dropped with empty span stack");
        let dur_ns = now.saturating_sub(open.start_ns);
        let self_ns = dur_ns.saturating_sub(open.child_ns);
        if let Some(parent) = inner.stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        let depth = inner.stack.len() as u16;
        let stats = inner
            .summary
            .phases
            .entry(open.name.clone())
            .or_insert_with(|| PhaseStats {
                cat: open.cat.to_string(),
                ..Default::default()
            });
        stats.count += 1;
        stats.incl_ns += dur_ns;
        stats.excl_ns += self_ns;
        if !inner.trace_detail {
            // Summary-only mode: detail intentionally elided, not "dropped".
        } else if inner.spans.len() < MAX_TRACE_SPANS {
            inner.spans.push(SpanEvent {
                name: open.name,
                cat: open.cat.to_string(),
                start_ns: open.start_ns,
                dur_ns,
                depth,
            });
        } else {
            *inner
                .summary
                .counters
                .entry("obs.dropped_spans".into())
                .or_insert(0) += 1;
        }
    }

    /// Record an externally measured span (known start and duration).
    /// Used when a measured interval is attributed after the fact — e.g.
    /// splitting one timed call across the paper's phase names.
    pub fn add_span_external(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let name = name.into();
        let mut inner = self.inner.borrow_mut();
        if let Some(parent) = inner.stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        let depth = inner.stack.len() as u16;
        let stats = inner
            .summary
            .phases
            .entry(name.clone())
            .or_insert_with(|| PhaseStats {
                cat: cat.to_string(),
                ..Default::default()
            });
        stats.count += 1;
        stats.incl_ns += dur_ns;
        stats.excl_ns += dur_ns;
        if !inner.trace_detail {
            // Summary-only mode: detail intentionally elided, not "dropped".
        } else if inner.spans.len() < MAX_TRACE_SPANS {
            inner.spans.push(SpanEvent {
                name,
                cat: cat.to_string(),
                start_ns,
                dur_ns,
                depth,
            });
        } else {
            *inner
                .summary
                .counters
                .entry("obs.dropped_spans".into())
                .or_insert(0) += 1;
        }
    }

    /// Add to a named counter.
    pub fn add_count(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.summary.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.summary.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record a sample into a named log-scale histogram.
    pub fn record_value(&self, name: &str, v: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.summary.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = LogHistogram::new();
                h.record(v);
                inner.summary.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Append to a named ordered series (per-iteration residuals, …).
    /// Series live in the [`RankProfile`], not the [`Summary`]: ordered
    /// concatenation is not a commutative reduction.
    pub fn push_series(&self, name: &str, v: f64) {
        let mut inner = self.inner.borrow_mut();
        match inner.series.get_mut(name) {
            Some(s) => s.push(v),
            None => {
                inner.series.insert(name.to_string(), vec![v]);
            }
        }
    }

    /// Record an instant event with structured arguments.
    pub fn instant(&self, name: impl Into<String>, args: Value) {
        let ts_ns = self.now_ns();
        let mut inner = self.inner.borrow_mut();
        if inner.trace_detail {
            inner.instants.push(InstantEvent {
                name: name.into(),
                ts_ns,
                args,
            });
        }
    }

    /// Snapshot the mergeable aggregate recorded so far.
    pub fn summary(&self) -> Summary {
        self.inner.borrow().summary.clone()
    }

    /// Snapshot everything recorded so far into a transportable profile.
    /// Spans still open are not included (only closed spans have a
    /// duration); their count is surfaced as `obs.unclosed_spans`.
    pub fn profile(&self) -> RankProfile {
        let inner = self.inner.borrow();
        let mut summary = inner.summary.clone();
        if !inner.stack.is_empty() {
            summary
                .counters
                .insert("obs.unclosed_spans".into(), inner.stack.len() as u64);
        }
        RankProfile {
            rank: inner.rank,
            spans: inner.spans.clone(),
            instants: inner.instants.clone(),
            summary,
            series: inner.series.clone(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Recorder")
            .field("rank", &inner.rank)
            .field("open_spans", &inner.stack.len())
            .field("closed_spans", &inner.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        let rec = Recorder::new_manual_clock(0);
        let outer = rec.span_cat("outer", "amr");
        rec.advance_clock(1_000);
        {
            let _inner = rec.span_cat("inner", "comm");
            rec.advance_clock(400);
        }
        rec.advance_clock(250);
        drop(outer);
        let s = rec.summary();
        let o = &s.phases["outer"];
        let i = &s.phases["inner"];
        assert_eq!(i.incl_ns, 400);
        assert_eq!(i.excl_ns, 400);
        assert_eq!(o.incl_ns, 1_650);
        assert_eq!(o.excl_ns, 1_250, "outer exclusive excludes the inner span");
        assert_eq!(o.cat, "amr");
        assert_eq!(i.cat, "comm");
    }

    #[test]
    fn three_level_nesting_and_siblings() {
        let rec = Recorder::new_manual_clock(0);
        let a = rec.span("a");
        rec.advance_clock(100);
        {
            let b = rec.span("b");
            rec.advance_clock(50);
            {
                let _c = rec.span("c");
                rec.advance_clock(30);
            }
            rec.advance_clock(20);
            drop(b);
        }
        {
            let _b2 = rec.span("b"); // second entry of the same phase
            rec.advance_clock(10);
        }
        drop(a);
        let s = rec.summary();
        assert_eq!(s.phases["c"].incl_ns, 30);
        assert_eq!(s.phases["b"].count, 2);
        assert_eq!(s.phases["b"].incl_ns, 100 + 10);
        assert_eq!(s.phases["b"].excl_ns, 70 + 10);
        assert_eq!(s.phases["a"].incl_ns, 210);
        assert_eq!(s.phases["a"].excl_ns, 100);
        // Depths recorded on the trace events.
        let p = rec.profile();
        let depth_of = |name: &str| {
            p.spans
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.depth)
                .unwrap()
        };
        assert_eq!(depth_of("a"), 0);
        assert_eq!(depth_of("b"), 1);
        assert_eq!(depth_of("c"), 2);
    }

    #[test]
    fn external_spans_count_as_children() {
        let rec = Recorder::new_manual_clock(3);
        let g = rec.span("phase");
        let t0 = rec.now_ns();
        rec.advance_clock(1_000);
        rec.add_span_external("sub1", "amr", t0, 600);
        rec.add_span_external("sub2", "amr", t0 + 600, 400);
        drop(g);
        let s = rec.summary();
        assert_eq!(s.phases["phase"].incl_ns, 1_000);
        assert_eq!(s.phases["phase"].excl_ns, 0);
        assert_eq!(s.phases["sub1"].incl_ns, 600);
        assert_eq!(s.phases["sub2"].incl_ns, 400);
    }

    #[test]
    fn counters_histograms_series_instants() {
        let rec = Recorder::new_manual_clock(1);
        rec.add_count("iters", 3);
        rec.add_count("iters", 4);
        rec.record_value("bytes", 100);
        rec.record_value("bytes", 3000);
        rec.push_series("residual", 1.0);
        rec.push_series("residual", 0.1);
        rec.instant("adapt", Value::object([("elements", Value::from(512u64))]));
        let p = rec.profile();
        assert_eq!(p.summary.counter("iters"), 7);
        assert_eq!(p.summary.hists["bytes"].count, 2);
        assert_eq!(p.series["residual"], vec![1.0, 0.1]);
        assert_eq!(p.instants.len(), 1);
        assert_eq!(p.rank, 1);
    }

    #[test]
    fn unclosed_spans_are_flagged_not_counted() {
        let rec = Recorder::new_manual_clock(0);
        let _g = rec.span("open-forever");
        rec.advance_clock(10);
        let p = rec.profile();
        assert!(!p.summary.phases.contains_key("open-forever"));
        assert_eq!(p.summary.counter("obs.unclosed_spans"), 1);
    }

    #[test]
    fn summary_only_mode_keeps_summary_exact_without_events() {
        let rec = Recorder::new_summary_only(7);
        rec.with("compute", || ());
        rec.add_count("iters", 3);
        rec.record_value("bytes", 64);
        rec.instant("adapt", Value::object([("e", Value::from(1u64))]));
        let p = rec.profile();
        assert_eq!(p.rank, 7);
        assert_eq!(p.summary.phases["compute"].count, 1);
        assert_eq!(p.summary.counter("iters"), 3);
        assert_eq!(p.summary.hists["bytes"].count, 1);
        assert!(p.spans.is_empty(), "summary-only keeps no span events");
        assert!(p.instants.is_empty(), "summary-only keeps no instants");
        assert_eq!(
            p.summary.counter("obs.dropped_spans"),
            0,
            "elided detail is intentional, not dropped"
        );
    }

    #[test]
    fn with_returns_closure_value() {
        let rec = Recorder::new_manual_clock(0);
        let v = rec.with("compute", || 42);
        assert_eq!(v, 42);
        assert_eq!(rec.summary().phases["compute"].count, 1);
    }
}
