//! Aggregated per-rank telemetry and the cross-rank merge.

use std::collections::BTreeMap;

use crate::json::{ToJson, Value};
use crate::metrics::LogHistogram;

/// Types whose per-rank instances combine into a world-wide aggregate.
///
/// Implementations must be **associative and commutative** (up to floating
/// point), so a world's profiles can be reduced tree-wise, pairwise, or in
/// rank order with the same result — the same contract as an MPI reduction
/// operator.
pub trait Reduce {
    fn reduce(&mut self, other: &Self);

    /// Fold a sequence of values into one (empty sequence ⇒ `Default`).
    fn reduce_all<'a, I>(items: I) -> Self
    where
        Self: Default + Sized + 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::default();
        for item in items {
            acc.reduce(item);
        }
        acc
    }
}

/// Accumulated time of one named span (phase) on one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStats {
    /// Category ("amr", "solve", "comm", …) of the span.
    pub cat: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds (children included).
    pub incl_ns: u64,
    /// Exclusive wall-clock nanoseconds (children subtracted).
    pub excl_ns: u64,
}

impl PhaseStats {
    pub fn incl_seconds(&self) -> f64 {
        self.incl_ns as f64 / 1e9
    }

    pub fn excl_seconds(&self) -> f64 {
        self.excl_ns as f64 / 1e9
    }
}

impl Reduce for PhaseStats {
    fn reduce(&mut self, other: &Self) {
        if self.cat.is_empty() {
            self.cat = other.cat.clone();
        }
        self.count += other.count;
        self.incl_ns += other.incl_ns;
        self.excl_ns += other.excl_ns;
    }
}

impl ToJson for PhaseStats {
    fn to_json_value(&self) -> Value {
        Value::object([
            ("cat", Value::from(self.cat.as_str())),
            ("count", Value::from(self.count)),
            ("incl_s", Value::from(self.incl_seconds())),
            ("excl_s", Value::from(self.excl_seconds())),
        ])
    }
}

/// One rank's aggregated telemetry: phase times, counters, histograms.
///
/// This is the mergeable "registry" view of a [`crate::Recorder`]; the
/// ordered event list lives in [`crate::RankProfile`] instead, because
/// event-list concatenation is not commutative.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    pub phases: BTreeMap<String, PhaseStats>,
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, LogHistogram>,
}

impl Summary {
    /// Inclusive seconds of a named phase (0 if absent).
    pub fn incl_seconds(&self, phase: &str) -> f64 {
        self.phases
            .get(phase)
            .map(|p| p.incl_seconds())
            .unwrap_or(0.0)
    }

    /// Exclusive seconds of a named phase (0 if absent).
    pub fn excl_seconds(&self, phase: &str) -> f64 {
        self.phases
            .get(phase)
            .map(|p| p.excl_seconds())
            .unwrap_or(0.0)
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total inclusive seconds across phases of one category.
    pub fn cat_incl_seconds(&self, cat: &str) -> f64 {
        self.phases
            .values()
            .filter(|p| p.cat == cat)
            .map(|p| p.incl_seconds())
            .sum()
    }
}

impl Reduce for Summary {
    fn reduce(&mut self, other: &Self) {
        for (name, stats) in &other.phases {
            self.phases.entry(name.clone()).or_default().reduce(stats);
        }
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }
}

impl ToJson for Summary {
    fn to_json_value(&self) -> Value {
        Value::object([
            (
                "phases",
                Value::object(
                    self.phases
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json_value())),
                ),
            ),
            (
                "counters",
                Value::object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::from(v))),
                ),
            ),
            (
                "histograms",
                Value::object(
                    self.hists
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json_value())),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> Summary {
        let mut s = Summary::default();
        let mut h = LogHistogram::new();
        h.record(seed);
        h.record(seed * 3 + 1);
        s.hists.insert("msg_bytes".into(), h);
        s.counters.insert("iters".into(), seed + 2);
        s.phases.insert(
            "BalanceTree".into(),
            PhaseStats {
                cat: "amr".into(),
                count: seed,
                incl_ns: 100 * seed,
                excl_ns: 60 * seed,
            },
        );
        if seed.is_multiple_of(2) {
            s.phases.insert(
                "MINRES".into(),
                PhaseStats {
                    cat: "solve".into(),
                    count: 1,
                    incl_ns: 5000,
                    excl_ns: 5000,
                },
            );
        }
        s
    }

    #[test]
    fn reduce_is_commutative_and_associative() {
        let (a, b, c) = (sample(2), sample(5), sample(9));
        let mut ab_c = a.clone();
        ab_c.reduce(&b);
        ab_c.reduce(&c);
        let mut bc = b.clone();
        bc.reduce(&c);
        let mut a_bc = a.clone();
        a_bc.reduce(&bc);
        assert_eq!(ab_c, a_bc, "associativity");
        let mut ba = b.clone();
        ba.reduce(&a);
        let mut ab = a.clone();
        ab.reduce(&b);
        assert_eq!(ab, ba, "commutativity");
    }

    #[test]
    fn reduce_all_handles_empty_and_identity() {
        let zero = Summary::reduce_all(std::iter::empty::<&Summary>());
        assert_eq!(zero, Summary::default());
        let a = sample(3);
        let merged = Summary::reduce_all([&a]);
        assert_eq!(merged, a);
        let mut with_default = a.clone();
        with_default.reduce(&Summary::default());
        assert_eq!(with_default, a, "default is the identity");
    }

    #[test]
    fn accessors() {
        let s = sample(4);
        assert_eq!(s.counter("iters"), 6);
        assert_eq!(s.counter("missing"), 0);
        assert!(s.incl_seconds("BalanceTree") > 0.0);
        assert_eq!(s.incl_seconds("nope"), 0.0);
        assert!(s.cat_incl_seconds("solve") > 0.0);
    }
}
