//! # obs — unified tracing and telemetry
//!
//! The paper's entire evaluation (Figs. 7, 8, 10) is a runtime-breakdown
//! story: per-AMR-function timings, AMG setup vs. V-cycle cost, AMR/solve
//! ratios. This crate is the measurement substrate every layer reports
//! through:
//!
//! * **[`Recorder`]** — a per-rank handle recording hierarchical
//!   [spans](Recorder::span) with *inclusive* (wall-clock) and
//!   *exclusive* (children subtracted) time, counters, log-scale
//!   [histograms](LogHistogram), ordered series (per-iteration
//!   residuals), and instant events.
//! * **[`Summary`]** — the mergeable aggregate; [`Reduce`] merges
//!   per-rank summaries across a `scomm` world (associative +
//!   commutative, like an MPI reduction).
//! * **[`export`]** — Chrome-trace JSON (one track per simulated rank,
//!   loadable in `chrome://tracing`), a JSONL event log, and a run
//!   manifest under `results/obs/` that the figure harnesses consume.
//! * **[`json`]** — a small self-contained JSON value/writer/parser
//!   (the offline build cannot fetch `serde`).
//!
//! ## Example
//!
//! ```
//! use obs::{Recorder, Reduce, Summary};
//!
//! let rec = Recorder::new(0);
//! {
//!     let _solve = rec.span_cat("MINRES", "solve");
//!     rec.push_series("minres.residual", 1e-3);
//!     let _v = rec.span_cat("AMGSolve", "solve"); // nested: V-cycle
//! }
//! rec.add_count("minres.iterations", 1);
//! let merged = Summary::reduce_all([&rec.summary()]);
//! assert!(merged.incl_seconds("MINRES") >= merged.incl_seconds("AMGSolve"));
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod rec;
pub mod summary;

pub use export::{chrome_trace, jsonl_events, run_manifest, ObsSession, WrittenRun};
pub use json::{ToJson, Value};
pub use metrics::LogHistogram;
pub use rec::{InstantEvent, RankProfile, Recorder, SpanEvent, SpanGuard};
pub use summary::{PhaseStats, Reduce, Summary};
