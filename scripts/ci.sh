#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Same suite with the distributed invariant checkers armed: stage
# guards in octree/forest/mesh/rhea self-validate after every AMR
# phase. Debug builds only — release builds compile the guards out.
echo "==> CHECK_INVARIANTS=1 cargo test -q --workspace"
CHECK_INVARIANTS=1 cargo test -q --workspace

# Fault-injection smoke (~seconds, bounded well under 2 minutes): the
# AMR pipeline under a seeded adversarial message schedule, plus the
# scomm fault-layer unit tests.
echo "==> fault-injection smoke"
timeout 120 cargo test -q -p check --test fault_smoke
timeout 120 cargo test -q -p scomm fault_injection

# AMR fuzz smoke (~5 s): fixed-seed adaptation cycles at P in {1,2,4}
# asserting every invariant checker, bitwise fast-vs-naive balance
# equality, and field-transfer conservation. The 200-cycle acceptance
# run is the same binary with -- --ignored.
echo "==> amr-fuzz-smoke"
timeout 120 cargo test -q -p check --test fuzz_amr

# High-P virtual-rank fuzz smoke (release, time-boxed): 25 adaptation
# cycles at P in {64, 256} *virtual* ranks on a <=16-worker pool,
# asserting the full fuzz_amr property set — the PR 6 acceptance bar.
# Release because debug is ~10x slower at these world sizes; the
# always-on debug tier above already covers virtual P = 16. Measured
# release timings: P=64 ~25 s, P=256 ~100 s.
echo "==> vrank-fuzz-smoke"
timeout 600 cargo test -q --release -p check --test fuzz_amr -- --ignored vrank_smoke

# Overlap differential (~1 min debug): the split-phase exchange path —
# DistOp apply, AMG V-cycle, full MINRES solve — must stay bitwise
# identical to the blocking oracle at P in {1,2,4,8}.
echo "==> overlap differential"
timeout 300 cargo test -q -p check --test overlap_diff

# Bench smoke: drives the matvec-pipeline benchmark harness end to end
# (tensor kernels, packed exchange, fused MINRES counters) with reduced
# sample counts. Catches harness bitrot and the zero-allocation /
# one-allreduce-per-iteration invariants; timing gates only run in the
# full `scripts/bench.sh` release pass.
echo "==> bench smoke"
timeout 300 bash scripts/bench.sh --smoke

echo "ci: all green"
