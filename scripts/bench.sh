#!/usr/bin/env bash
# Matvec-pipeline benchmark harness (PR 3).
#
#   scripts/bench.sh           regenerate BENCH_pr3.json from a full
#                              --release run (the committed artifact);
#                              fails if the tensor-kernel speedup
#                              regresses below 1.5x or a warm solve
#                              allocates.
#   scripts/bench.sh --smoke   fast debug-build pass over the same code
#                              paths for CI; writes to a scratch file
#                              and skips the speedup gate (debug builds
#                              don't vectorize).
#
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    out="$(mktemp -t BENCH_pr3_smoke.XXXXXX.json)"
    trap 'rm -f "$out"' EXIT
    echo "==> bench smoke (debug, reduced samples) -> $out"
    cargo run -q -p rhea-bench --bin pr3_pipeline -- --smoke --out "$out"
else
    echo "==> bench full (--release) -> BENCH_pr3.json"
    cargo run -q --release -p rhea-bench --bin pr3_pipeline -- --out BENCH_pr3.json
fi
