#!/usr/bin/env bash
# Benchmark harness (PR 3 matvec pipeline + PR 4 AMR adapt cycle +
# PR 5 split-phase exchange overlap + PR 6 virtual-rank scheduler).
#
#   scripts/bench.sh           regenerate BENCH_pr3.json, BENCH_pr4.json,
#                              BENCH_pr5.json and BENCH_pr6.json from
#                              full --release runs (the committed
#                              artifacts); fails if the tensor-kernel
#                              speedup regresses below 1.5x, the
#                              adapt-cycle speedup below 2x, the
#                              overlapped-apply speedup below 1.25x, a
#                              warm solve/adapt cycle allocates, or the
#                              measured collective rounds stop growing
#                              with P over the {256, 1024, 4096} sweep.
#   scripts/bench.sh --smoke   fast debug-build pass over the same code
#                              paths for CI; writes to scratch files
#                              and skips the speedup gates (debug
#                              builds don't vectorize).
#
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    out3="$(mktemp -t BENCH_pr3_smoke.XXXXXX.json)"
    out4="$(mktemp -t BENCH_pr4_smoke.XXXXXX.json)"
    out5="$(mktemp -t BENCH_pr5_smoke.XXXXXX.json)"
    out6="$(mktemp -t BENCH_pr6_smoke.XXXXXX.json)"
    trap 'rm -f "$out3" "$out4" "$out5" "$out6"' EXIT
    echo "==> bench smoke (debug, reduced samples) -> $out3"
    cargo run -q -p rhea-bench --bin pr3_pipeline -- --smoke --out "$out3"
    echo "==> adapt-cycle bench smoke (debug, reduced samples) -> $out4"
    cargo run -q -p rhea-bench --bin fig10_amr_timings -- --smoke --out "$out4"
    echo "==> overlap bench smoke (debug, reduced samples) -> $out5"
    cargo run -q -p rhea-bench --bin pr5_overlap -- --smoke --out "$out5"
    echo "==> vrank bench smoke (debug, P in {32, 64} virtual ranks) -> $out6"
    cargo run -q -p rhea-bench --bin pr6_vrank -- --smoke --out "$out6"
else
    echo "==> bench full (--release) -> BENCH_pr3.json"
    cargo run -q --release -p rhea-bench --bin pr3_pipeline -- --out BENCH_pr3.json
    echo "==> adapt-cycle bench full (--release) -> BENCH_pr4.json"
    cargo run -q --release -p rhea-bench --bin fig10_amr_timings -- --out BENCH_pr4.json
    echo "==> overlap bench full (--release) -> BENCH_pr5.json"
    cargo run -q --release -p rhea-bench --bin pr5_overlap -- --out BENCH_pr5.json
    echo "==> vrank bench full (--release, P in {256, 1024, 4096}) -> BENCH_pr6.json"
    cargo run -q --release -p rhea-bench --bin pr6_vrank -- --out BENCH_pr6.json
fi
